"""Theorem 5's upper bound, constructively: TriAL= → FO⁴.

``trial_eq_to_fo4`` folds θ-equalities into shared variables, then
miniscopes and greedily reuses names.  We assert:

* semantic agreement with the algebra on random stores (always);
* ≤ 4 variable names on the fragment's characteristic join shapes
  (composition, same-label, products, selections, nesting, difference).

The full Lemma 1 guarantee also covers η-equality-only joins through
∼-chaining with intermediate variables; our heuristic does not implement
that chaining, so purely-data-joined products may use a 5th name — an
honest, documented gap (see EXPERIMENTS.md).
"""

import pytest
from hypothesis import given, settings

from repro.core import R, evaluate, example2_expr, join, select
from repro.core.builder import intersect_as_join
from repro.errors import TranslationError
from repro.logic import answers
from repro.logic.minimize import minimize_variables, miniscope, reuse_names
from repro.translations.trial_to_fo import trial_eq_to_fo4, trial_to_fo
from tests.conftest import expressions, stores

FO4_SHAPES = [
    R("E"),
    example2_expr(),
    join(R("E"), R("E"), "1,2,3'", "3=1'"),
    join(R("E"), R("E"), "1,2,3'", "3=1' & 2=2'"),
    join(R("E"), R("E"), "1,1',2'"),
    select(join(R("E"), R("E"), "1,3',3", "2=1'"), "1=3"),
    intersect_as_join(R("E"), R("E")),
    join(
        join(R("E"), R("E"), "1,3',3", "2=1'"),
        R("E"),
        "1,2,3'",
        "3=1' & 2=2'",
    ),
    join(R("E"), R("E"), "1,2,3'", "rho(2)=rho(2') & 3=1'"),
    R("E") - join(R("E"), R("E"), "1,2,3'", "3=1'"),
]


class TestFO4Bound:
    @pytest.mark.parametrize("expr", FO4_SHAPES, ids=repr)
    def test_characteristic_shapes_land_in_fo4(self, expr):
        phi = trial_eq_to_fo4(expr)
        assert phi.num_variables() <= 4, sorted(phi.all_vars())

    @pytest.mark.parametrize("expr", FO4_SHAPES, ids=repr)
    @pytest.mark.parametrize("seed_store_idx", [0, 1])
    def test_shapes_agree_semantically(self, expr, seed_store_idx, small_store, two_relation_store):
        store = [small_store, two_relation_store.restrict(["E"])][seed_store_idx]
        phi = trial_eq_to_fo4(expr)
        assert answers(phi, store, ("v1", "v2", "v3")) == evaluate(expr, store)

    def test_rejects_inequalities(self):
        with pytest.raises(TranslationError):
            trial_eq_to_fo4(select(R("E"), "1!=2"))

    def test_rejects_stars(self):
        from repro.core import reach_forward

        with pytest.raises(TranslationError):
            trial_eq_to_fo4(reach_forward())


class TestSemanticPreservation:
    @given(expressions(max_depth=3, allow_star=False), stores(max_triples=8))
    @settings(max_examples=50, deadline=None)
    def test_folded_translation_agrees(self, expr, store):
        """Equality folding never changes semantics (all expressions)."""
        try:
            phi = trial_to_fo(expr, fold_equalities=True)
        except TranslationError:
            return  # data constants, outside the ⟨E, ∼⟩ vocabulary
        assert answers(phi, store, ("v1", "v2", "v3")) == evaluate(expr, store)

    @given(expressions(max_depth=3, allow_star=False), stores(max_triples=8))
    @settings(max_examples=50, deadline=None)
    def test_minimisation_preserves_semantics(self, expr, store):
        try:
            phi = trial_to_fo(expr)
        except TranslationError:
            return
        minimised = minimize_variables(phi, pool=("v1", "v2", "v3", "v4", "v5", "v6"))
        assert minimised.num_variables() <= phi.num_variables()
        assert answers(minimised, store, ("v1", "v2", "v3")) == answers(
            phi, store, ("v1", "v2", "v3")
        )


class TestMinimizeUnits:
    def test_miniscope_splits_conjunctions(self):
        from repro.logic import And, Exists, RelAtom, Var

        phi = Exists(
            "w",
            And(
                RelAtom("E", (Var("x"), Var("y"), Var("z"))),
                RelAtom("E", (Var("w"), Var("w"), Var("w"))),
            ),
        )
        out = miniscope(phi)
        assert isinstance(out, And)

    def test_miniscope_drops_unused_quantifier(self):
        from repro.logic import Eq, Exists, Var

        assert miniscope(Exists("w", Eq(Var("x"), Var("x")))) == Eq(Var("x"), Var("x"))

    def test_reuse_names_shares_disjoint_scopes(self):
        from repro.logic import And, Exists, RelAtom, Var

        phi = And(
            Exists("a", RelAtom("E", (Var("a"), Var("x"), Var("x")))),
            Exists("b", RelAtom("E", (Var("b"), Var("x"), Var("x")))),
        )
        out = reuse_names(phi, pool=("v1",))
        names = out.all_vars()
        assert names == {"v1", "x"}

    def test_reuse_names_avoids_capture(self):
        from repro.logic import Exists, RelAtom, Var

        # Binder scope contains free v1: the binder must avoid v1.
        phi = Exists("a", RelAtom("E", (Var("a"), Var("v1"), Var("v1"))))
        out = reuse_names(phi, pool=("v1", "v2"))
        assert out.var == "v2"
