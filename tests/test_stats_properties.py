"""Property tests for the statistics catalog and the planner's cost model.

Two invariant families:

* **Cache consistency under mutation.**  Stores mutate by *derivation*
  (``add_triple`` / ``with_relation`` return new stores), which is what
  makes the lazy stats/index/columnar caches safe.  These tests hunt the
  invalidation bug that would appear if a derived store ever shared (or
  corrupted) its parent's caches.
* **Cost-model sanity.**  Every estimate is non-negative and finite,
  cumulative cost is strictly monotone over children, and for the
  scan-shaped plan family (scans, filters, set operations — the
  operators whose cost is a monotone function of input cardinality) cost
  is monotone in relation size.  Selectivity-based operators
  (index lookups, joins) are deliberately excluded from the growth
  property: adding triples can *raise* distinct counts and therefore
  lower the estimated output of an equality, which is correct behaviour
  for a uniformity-assumption optimizer, not a bug.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import R, select
from repro.core.expressions import Diff, Rel, Select, Union
from repro.core.plan import compile_plan
from repro.triplestore.model import Triplestore
from repro.triplestore.stats import TriplestoreStats
from tests.conftest import OBJECTS, expressions, stores, triples_st


def _fresh_stats(store: Triplestore) -> TriplestoreStats:
    """Statistics recomputed from scratch (no shared cache)."""
    return TriplestoreStats(store)


# --------------------------------------------------------------------- #
# Cache consistency across add_triple / mutation-by-derivation
# --------------------------------------------------------------------- #


@given(stores(), triples_st)
@settings(max_examples=80, deadline=None)
def test_add_triple_yields_consistent_stats(store, triple):
    # Warm every cache on the original store *before* mutating.
    before = store.stats().relation("E")
    index_before = dict(store.index("E", (0,)))
    derived = store.add_triple(triple)

    # The derived store's stats match a from-scratch recomputation...
    derived_rel = derived.stats().relation("E")
    fresh = _fresh_stats(derived).relation("E")
    assert derived_rel == fresh
    assert derived_rel.cardinality == len(derived.relation("E"))
    assert derived_rel.distinct == tuple(
        len({t[i] for t in derived.relation("E")}) for i in range(3)
    )

    # ...and the original store's cached stats and indexes are untouched.
    assert store.stats().relation("E") == before
    assert dict(store.index("E", (0,))) == index_before
    assert triple in derived.relation("E")


@given(stores(), triples_st)
@settings(max_examples=40, deadline=None)
def test_add_triple_yields_consistent_columnar_view(store, triple):
    """The columnar encoding is derived data too: never shared, never stale."""
    view_before = store.columnar()
    assert view_before.decode_triples(view_before.relation_keys("E")) == store.relation("E")
    derived = store.add_triple(triple)
    view_after = derived.columnar()
    assert view_after is not view_before
    assert view_after.decode_triples(view_after.relation_keys("E")) == derived.relation("E")
    # Original view still decodes the original relation.
    assert view_before.decode_triples(view_before.relation_keys("E")) == store.relation("E")


@given(stores())
@settings(max_examples=40, deadline=None)
def test_stats_are_idempotent_and_cached(store):
    first = store.stats().relation("E")
    again = store.stats().relation("E")
    assert first == again
    assert store.stats() is store.stats()
    # Building indexes in between must not perturb statistics.
    store.index("E", (1,))
    assert store.stats().relation("E") == first


# --------------------------------------------------------------------- #
# Cost-model sanity
# --------------------------------------------------------------------- #


@given(expressions(max_depth=3, allow_star=True), stores())
@settings(max_examples=100, deadline=None)
def test_estimates_are_nonnegative_and_finite(expr, store):
    plan = compile_plan(expr, store)
    for op in plan.walk():
        assert op.est_rows >= 0.0
        assert op.est_cost >= 0.0
        assert math.isfinite(op.est_rows)
        assert math.isfinite(op.est_cost)


@given(expressions(max_depth=3, allow_star=True), stores())
@settings(max_examples=100, deadline=None)
def test_cumulative_cost_is_monotone_over_children(expr, store):
    plan = compile_plan(expr, store)
    for op in plan.walk():
        for child in op.children():
            assert op.est_cost > child.est_cost


@given(
    stores(min_triples=1, max_triples=8),
    st.sets(triples_st, min_size=1, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_scan_family_cost_is_monotone_in_relation_size(store, extra):
    """Growing a relation never cheapens a scan-shaped plan.

    The family: scans, residual filters over scans, unions/differences of
    scans — every operator whose cost depends only on input cardinality.
    """
    grown = store.with_relation("E", store.relation("E") | extra)
    plans = [
        R("E"),
        select(R("E"), "rho(1)=rho(3)"),  # residual filter, no index key
        Union(Rel("E"), Select(Rel("E"), "1!=2")),
        Diff(Rel("E"), Rel("E")),
    ]
    for expr in plans:
        small = compile_plan(expr, store)
        large = compile_plan(expr, grown)
        assert large.est_cost >= small.est_cost, repr(expr)
    # Scan output estimates track cardinality exactly.
    assert compile_plan(R("E"), grown).est_rows == len(grown.relation("E"))
