"""The error hierarchy: everything deliberate derives from ReproError."""

import pytest

from repro.errors import (
    AlgebraError,
    DatalogError,
    EvaluationBudgetError,
    FragmentError,
    GraphError,
    LogicError,
    ParseError,
    ReproError,
    StratificationError,
    TranslationError,
    TriplestoreError,
    UnknownRelationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            AlgebraError,
            DatalogError,
            EvaluationBudgetError,
            FragmentError,
            GraphError,
            LogicError,
            ParseError,
            StratificationError,
            TranslationError,
            TriplestoreError,
            UnknownRelationError,
        ],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_fragment_is_algebra_error(self):
        assert issubclass(FragmentError, AlgebraError)

    def test_stratification_is_datalog_error(self):
        assert issubclass(StratificationError, DatalogError)

    def test_unknown_relation_carries_hints(self):
        err = UnknownRelationError("X", ("E", "F"))
        assert err.name == "X"
        assert "E, F" in str(err)

    def test_parse_error_snippet(self):
        err = ParseError("bad token", "select[1=](E)", 9)
        assert "position 9" in str(err)
        assert err.pos == 9


class TestCatchability:
    def test_one_except_clause_covers_the_library(self):
        from repro.core import evaluate, parse
        from repro.triplestore import Triplestore

        failures = 0
        for bad in ("join[9](E, F)", "select[~~](E)"):
            try:
                parse(bad)
            except ReproError:
                failures += 1
        try:
            evaluate(parse("Nope"), Triplestore([("a", "b", "c")]))
        except ReproError:
            failures += 1
        assert failures == 3
