"""E11/E14/E15: the expressiveness separations, run constructively.

Each separation theorem in the paper comes with finite witnesses; we
build both sides and check the claimed behaviour:

* Theorem 4 (TriAL ⊄ FO⁵): the 6-distinct-objects query distinguishes
  T₅ from T₆ (complete stores over 5 vs 6 objects);
* Theorem 4 (FO³ ⊊ TriAL): the 4-objects query distinguishes T₃/T₄;
* Theorem 4 (FO⁴ ⊄ TriAL): the FO⁴ sentence ϕ distinguishes the proof's
  structures A and B — while e.g. all ≤3-variable pebble-style queries
  we sample agree on them;
* Theorem 8 (TriAL ⊄ CNRE): the "no a-edge" query is non-monotone,
  CNREs are monotone — verified on the proof's G ⊂ G′;
* Proposition 6: register automata express the ≥n-distinct-values
  family eₙ (beyond TriAL*'s L⁶∞ω bound), but cannot express the
  non-monotone "no a-edge" query.
"""

import pytest

from repro.automata.memory import distinct_values_expr, evaluate_rem
from repro.core import (
    R,
    evaluate,
    distinct_objects_at_least,
    project13,
    select,
)
from repro.core.builder import complement, join
from repro.graphdb import GraphDB, cnre
from repro.logic import And, Eq, Exists, Not, RelAtom, Var, answers, exists, and_all
from repro.rdf.datasets import clique_store, theorem4_structures
from repro.workloads.generators import clique_graph


class TestDistinctObjectQueries:
    """U ✶_θ U with pairwise inequalities: nonempty iff ≥ k objects."""

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
    def test_threshold(self, k):
        expr = distinct_objects_at_least(k)
        below = clique_store(k - 1)
        at = clique_store(k)
        assert evaluate(expr, below) == frozenset()
        assert evaluate(expr, at) != frozenset()

    def test_t3_t4_separation(self):
        """FO³ ⊊ TriAL: the 4-objects query separates T₃ from T₄."""
        expr = distinct_objects_at_least(4)
        assert evaluate(expr, clique_store(3)) == frozenset()
        assert evaluate(expr, clique_store(4)) != frozenset()

    def test_t5_t6_separation(self):
        """TriAL ⊄ FO⁵: the 6-objects query separates T₅ from T₆."""
        expr = distinct_objects_at_least(6)
        assert evaluate(expr, clique_store(5)) == frozenset()
        assert evaluate(expr, clique_store(6)) != frozenset()

    def test_out_of_range(self):
        from repro.errors import AlgebraError

        with pytest.raises(AlgebraError):
            distinct_objects_at_least(7)


def _psi(x: str, y: str, z: str):
    """The proof's ψ(x,y,z): a shared middle witnessing all symmetric
    edges among {x, y, z} (appendix version; edges in A/B are symmetric
    so the missing E(z,w,y) conjunct is implied)."""
    w = "w2"
    return Exists(
        w,
        and_all(
            [
                RelAtom("E", (Var(x), Var(w), Var(y))),
                RelAtom("E", (Var(y), Var(w), Var(x))),
                RelAtom("E", (Var(y), Var(w), Var(z))),
                RelAtom("E", (Var(x), Var(w), Var(z))),
                RelAtom("E", (Var(z), Var(w), Var(x))),
                Not(Eq(Var(x), Var(z))),
                Not(Eq(Var(x), Var(y))),
                Not(Eq(Var(y), Var(z))),
            ]
        ),
    )


def _phi_fo4():
    """The FO⁴ sentence ϕ from the proof of Theorem 4 (closed form)."""
    distinct = [
        Not(Eq(Var(a), Var(b)))
        for a, b in (("x", "y"), ("x", "z"), ("x", "w"), ("y", "z"), ("y", "w"), ("z", "w"))
    ]
    body = and_all(
        [
            _psi("x", "y", "w"),
            _psi("x", "w", "z"),
            _psi("w", "y", "z"),
            _psi("x", "y", "z"),
        ]
        + distinct
    )
    return exists("x", "y", "z", "w", body)


class TestTheorem4Structures:
    def test_phi_separates_a_from_b(self):
        """The FO⁴ sentence holds in A but not in B."""
        a, b = theorem4_structures()
        phi = _phi_fo4()
        # ϕ uses x,y,z,w plus ψ's witness w2 — 5 names, but 4 in the
        # paper's counting (w2 reuses w there; our AST needs the extra
        # name because ψ(x,w,z) would capture w).
        assert answers(phi, a) == {()}
        assert answers(phi, b) == frozenset()

    def test_structures_locally_similar(self):
        """Sanity: simple 3-variable queries do NOT separate A and B.

        (The full claim — no TriAL query separates them — is the paper's
        game argument; here we check a representative sample of
        3-variable patterns agree, so the separation above is doing
        real work.)
        """
        a, b = theorem4_structures()
        probes = [
            exists("x", "y", "z", RelAtom("E", (Var("x"), Var("y"), Var("z")))),
            exists(
                "x", "y", "z",
                And(
                    RelAtom("E", (Var("x"), Var("y"), Var("z"))),
                    RelAtom("E", (Var("z"), Var("y"), Var("x"))),
                ),
            ),
            exists("x", "y", _psi("x", "y", "y")),
        ]
        for probe in probes:
            assert (answers(probe, a) == {()}) == (answers(probe, b) == {()})


class TestTheorem8Monotonicity:
    """CNREs are monotone; the TriAL 'no a-edge' query is not."""

    G = GraphDB(["v", "w"], [("v", "b", "w")])
    G_PRIME = GraphDB(["v", "w"], [("v", "b", "w"), ("v", "a", "w")])

    def _no_a_edge_pairs(self, graph):
        t = graph.to_triplestore()
        # (σ_{2=a}E)ᶜ restricted to node pairs, per the Thm 8 proof.
        from repro.translations import node_pairs, normalise

        expr = node_pairs() - normalise(select(R("E"), "2='a'"))
        return project13(evaluate(expr, t))

    def test_trial_query_is_non_monotone(self):
        assert ("v", "w") in self._no_a_edge_pairs(self.G)
        assert ("v", "w") not in self._no_a_edge_pairs(self.G_PRIME)

    def test_cnres_are_monotone(self):
        """Evaluating any CNRE on G ⊆ G′ can only grow."""
        queries = [
            cnre([("x", "b", "y")], free=("x", "y")),
            cnre([("x", "a+b", "y"), ("y", "(a+b)*", "z")], free=("x", "z")),
            cnre([("x", "[a].b", "y")], free=("x", "y")),
        ]
        for q in queries:
            assert q.evaluate(self.G) <= q.evaluate(self.G_PRIME)


class TestProposition6:
    def test_distinct_values_family(self):
        """eₙ nonempty iff the graph has ≥ n distinct data values."""
        for n in (2, 3, 4):
            expr = distinct_values_expr(n)
            small = clique_graph(n - 1)
            large = clique_graph(n)
            assert (
                evaluate_rem(expr, small.edges, small.rho_map()) == frozenset()
            )
            assert evaluate_rem(expr, large.edges, large.rho_map()) != frozenset()

    def test_same_data_values_block_family(self):
        g = clique_graph(5, distinct_data=False)
        expr = distinct_values_expr(3)
        assert evaluate_rem(expr, g.edges, g.rho_map()) == frozenset()

    def test_family_needs_n_at_least_2(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            distinct_values_expr(1)
