"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.core.conditions import Cond
from repro.core.expressions import (
    Diff,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
)
from repro.core.positions import Const, Pos
from repro.triplestore.model import Triplestore

OBJECTS = ("a", "b", "c", "d", "e")
DATA_VALUES = (0, 1)


# --------------------------------------------------------------------- #
# Fixtures
# --------------------------------------------------------------------- #

@pytest.fixture()
def small_store() -> Triplestore:
    """A small store with repeated middles and data values."""
    return Triplestore(
        [
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "q", "a"),
            ("p", "r", "q"),
            ("a", "q", "c"),
        ],
        rho={"a": 0, "b": 1, "c": 0, "p": 1, "q": 1, "r": 0},
    )


@pytest.fixture()
def two_relation_store() -> Triplestore:
    return Triplestore(
        {
            "E": [("a", "p", "b"), ("b", "p", "c")],
            "F": [("b", "q", "a"), ("c", "q", "b")],
        },
        rho={"a": 0, "b": 0, "c": 1, "p": 1, "q": 1},
    )


# --------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------- #

objects_st = st.sampled_from(OBJECTS)
triples_st = st.tuples(objects_st, objects_st, objects_st)


@st.composite
def stores(draw, min_triples: int = 1, max_triples: int = 12) -> Triplestore:
    """Random single-relation stores over a 5-object pool with ρ-values."""
    triples = draw(
        st.sets(triples_st, min_size=min_triples, max_size=max_triples)
    )
    rho = {o: draw(st.sampled_from(DATA_VALUES)) for o in OBJECTS}
    return Triplestore(triples, rho)


def _term(draw, max_pos: int, allow_const: bool, on_data: bool):
    use_const = allow_const and draw(st.booleans())
    if use_const:
        pool = DATA_VALUES if on_data else OBJECTS
        return Const(draw(st.sampled_from(pool)))
    return Pos(draw(st.integers(0, max_pos)))


@st.composite
def conditions(draw, max_pos: int = 5, max_conds: int = 2) -> tuple[Cond, ...]:
    """Random θ/η condition tuples over positions 0..max_pos."""
    n = draw(st.integers(0, max_conds))
    out = []
    for _ in range(n):
        on_data = draw(st.booleans())
        left = _term(draw, max_pos, allow_const=False, on_data=on_data)
        right = _term(draw, max_pos, allow_const=True, on_data=on_data)
        op = draw(st.sampled_from(("=", "!=")))
        out.append(Cond(left, right, op, on_data))
    return tuple(out)


out_specs = st.tuples(
    st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)
)


@st.composite
def expressions(draw, max_depth: int = 3, allow_star: bool = True):
    """Random TriAL(*) expressions over the single relation E.

    U is deliberately excluded (its translation/benchmark behaviour is
    covered by dedicated tests); stars are bounded to depth-1 operands
    to keep naive-engine fixpoints quick.
    """
    if max_depth <= 0:
        return Rel("E")
    kind = draw(
        st.sampled_from(
            ("rel", "select", "union", "diff", "intersect", "join", "join")
            + (("star", "lstar") if allow_star else ())
        )
    )
    if kind == "rel":
        return Rel("E")
    if kind == "select":
        inner = draw(expressions(max_depth=max_depth - 1, allow_star=allow_star))
        return Select(inner, draw(conditions(max_pos=2)))
    if kind in ("union", "diff", "intersect"):
        left = draw(expressions(max_depth=max_depth - 1, allow_star=allow_star))
        right = draw(expressions(max_depth=max_depth - 1, allow_star=allow_star))
        cls = {"union": Union, "diff": Diff, "intersect": Intersect}[kind]
        return cls(left, right)
    if kind == "join":
        left = draw(expressions(max_depth=max_depth - 1, allow_star=allow_star))
        right = draw(expressions(max_depth=max_depth - 1, allow_star=allow_star))
        return Join(left, right, draw(out_specs), draw(conditions()))
    # Star operands stay small (a relation or one selection): the naive
    # engine's full-re-join fixpoint is intentionally quadratic per round,
    # so a star over a product-sized base would dominate the test budget
    # without exercising anything new.
    if draw(st.booleans()):
        inner = Rel("E")
    else:
        inner = Select(Rel("E"), draw(conditions(max_pos=2, max_conds=1)))
    side = "right" if kind == "star" else "left"
    return Star(inner, draw(out_specs), draw(conditions()), side)
