"""Workload generators and their reference implementations (ground truth)."""

import pytest

from repro.core import FastEngine, R, Star, evaluate, query_q, star
from repro.core.conditions import Cond
from repro.core.positions import Pos
from repro.workloads import (
    chain_store,
    clique_graph,
    cycle_store,
    random_graph,
    random_store,
    reference_query_q,
    same_type_reachability_reference,
    social_network_store,
    transport_network,
)


class TestGenerators:
    def test_random_store_deterministic(self):
        assert random_store(6, 10, seed=3) == random_store(6, 10, seed=3)
        assert random_store(6, 10, seed=3) != random_store(6, 10, seed=4)

    def test_random_store_multi_relation(self):
        t = random_store(6, 12, n_relations=3)
        assert len(t.relation_names) == 3

    def test_chain_store(self):
        t = chain_store(5, label_cycle=2)
        assert len(t) == 5
        assert ("o0", "l0", "o1") in t

    def test_cycle_store(self):
        t = cycle_store(4)
        assert ("o3", "l", "o0") in t

    def test_clique_graph(self):
        g = clique_graph(4)
        assert len(g.edges) == 12
        assert len({g.rho(v) for v in g.nodes}) == 4

    def test_random_graph_no_isolated_nodes(self):
        g = random_graph(10, 8, seed=5)
        for node in g.nodes:
            touched = any(node in (u, v) for u, _, v in g.edges)
            assert touched


class TestTransportGroundTruth:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_cities=6, n_services=3, n_companies=2),
            dict(n_cities=8, n_services=4, n_companies=3, hierarchy_depth=3),
            dict(n_cities=5, n_services=2, n_companies=2, extra_routes=4),
        ],
    )
    def test_reference_matches_algebra(self, seed, kwargs):
        """query Q (TriAL*) equals the independent per-company BFS."""
        store = transport_network(seed=seed, **kwargs)
        assert evaluate(query_q(), store) == reference_query_q(store)

    def test_reference_matches_on_figure1(self):
        from repro.rdf.datasets import figure1

        assert evaluate(query_q(), figure1()) == reference_query_q(figure1())

    def test_transitivity_matters(self):
        """comp0 ⊂ comp1 makes comp1 witness comp0's routes."""
        store = transport_network(n_cities=4, n_services=1, n_companies=2, seed=0)
        result = evaluate(query_q(), store)
        assert any(p == "comp1" for _, p, _ in result)


class TestSocialGroundTruth:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_same_type_reachability(self, seed):
        store = social_network_store(8, 14, data_mode="type", seed=seed)
        expr = Star(
            R("E"),
            (0, 1, 5),
            (Cond(Pos(2), Pos(3)), Cond(Pos(1), Pos(4), "=", True)),
        )
        assert evaluate(expr, store) == same_type_reachability_reference(store)

    def test_quintuple_mode(self):
        store = social_network_store(3, 2, data_mode="quintuple", seed=0)
        users = [o for o in store.objects if str(o).startswith("u")]
        assert all(store.rho(u)[3] is None for u in users)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            social_network_store(3, 2, data_mode="nope")


class TestFastEngineOnWorkloads:
    def test_reach_star_on_chain(self):
        t = chain_store(30)
        expr = star(R("E"), "1,2,3'", "3=1'")
        fast = FastEngine().evaluate(expr, t)
        # Chain closure: (o_i, l_i, o_j) for all i < j ≤ n.
        assert len(fast) == 30 * 31 // 2
