"""The semijoin fragment (Section 7 future work)."""

from hypothesis import given, settings

from repro.core import R, evaluate, join, reach_forward, select
from repro.core.semijoin import antijoin, in_semijoin_algebra, semijoin
from repro.triplestore import Triplestore
from tests.conftest import stores


class TestSemantics:
    STORE = Triplestore(
        {
            "E": [("a", "p", "b"), ("b", "q", "c"), ("c", "r", "d")],
            "F": [("b", "x", "y")],
        }
    )

    def test_semijoin_keeps_matching_left_triples(self):
        # E-triples whose object is an F-subject.
        got = evaluate(semijoin(R("E"), R("F"), "3=1'"), self.STORE)
        assert got == {("a", "p", "b")}

    def test_semijoin_never_invents_triples(self):
        got = evaluate(semijoin(R("E"), R("F"), "3=1'"), self.STORE)
        assert got <= self.STORE.relation("E")

    def test_antijoin_is_the_complement_within_left(self):
        semi = evaluate(semijoin(R("E"), R("F"), "3=1'"), self.STORE)
        anti = evaluate(antijoin(R("E"), R("F"), "3=1'"), self.STORE)
        assert semi | anti == self.STORE.relation("E")
        assert semi & anti == frozenset()

    def test_unconditional_semijoin_is_nonempty_gate(self):
        got = evaluate(semijoin(R("E"), R("F")), self.STORE)
        assert got == self.STORE.relation("E")  # F nonempty
        empty_store = self.STORE.with_relation("F", [])
        assert evaluate(semijoin(R("E"), R("F")), empty_store) == frozenset()


class TestFragment:
    def test_semijoins_are_in_fragment(self):
        e = semijoin(select(R("E"), "2='p'"), R("F"), "3=1'")
        assert in_semijoin_algebra(e)
        assert in_semijoin_algebra(antijoin(R("E"), R("F"), "1=1'"))

    def test_full_joins_are_not(self):
        assert not in_semijoin_algebra(join(R("E"), R("E"), "1,2,3'", "3=1'"))

    def test_reachability_is_not(self):
        """The paper: key properties (reachability) need more than semijoins."""
        assert not in_semijoin_algebra(reach_forward())

    @given(stores(max_triples=8))
    @settings(max_examples=30, deadline=None)
    def test_semijoin_result_is_subset_of_left(self, store):
        e = semijoin(R("E"), R("E"), "3=1' & rho(2)=rho(2')")
        assert evaluate(e, store) <= store.relation("E")
