"""E2/E3: Proposition 1 and Theorem 1, run constructively.

The paper's argument: D₁ ≠ D₂ (D₂ lacks one triple), yet σ(D₁) = σ(D₂).
Every query over the σ-encoding — every NRE, and nSPARQL's axis-based
navigation — therefore answers identically on D₁ and D₂; but query Q
(in TriAL*) distinguishes them, since (St Andrews, London) ∈ Q(D₁) and
∉ Q(D₂).
"""

from repro.core import evaluate, project13, query_q
from repro.graphdb import evaluate_nre, parse_nre
from repro.rdf import (
    RDFGraph,
    Self,
    evaluate_nsparql_nre,
    proposition1_d1,
    proposition1_d2,
    sigma,
    sigma_is_lossless_for,
)

D1_STORE = proposition1_d1()
D2_STORE = proposition1_d2()
D1 = RDFGraph(D1_STORE.relation("E"))
D2 = RDFGraph(D2_STORE.relation("E"))

SAMPLE_NRES = [
    "next",
    "edge",
    "node",
    "next*",
    "next.[edge.node].next",
    "edge.node",
    "(next+edge)*",
    "next.[node-].edge*",
    "next-.next",
]


class TestProposition1:
    def test_documents_differ(self):
        assert D1 != D2
        assert ("Edinburgh", "Train Op 1", "London") in D1
        assert ("Edinburgh", "Train Op 1", "London") not in D2

    def test_sigma_collision(self):
        """The heart of Prop 1: σ(D₁) = σ(D₂)."""
        assert sigma(D1) == sigma(D2)

    def test_sigma_is_lossy_on_d2(self):
        """D₂'s σ-image decodes back to D₁ (the maximal preimage)."""
        assert not sigma_is_lossless_for(D2)
        assert sigma_is_lossless_for(D1)

    def test_every_nre_agrees_on_the_encodings(self):
        g1, g2 = sigma(D1), sigma(D2)
        for text in SAMPLE_NRES:
            nre = parse_nre(text)
            assert evaluate_nre(g1, nre) == evaluate_nre(g2, nre), text

    def test_query_q_distinguishes(self):
        """Q (TriAL*) tells D₁ from D₂ where σ-based languages cannot."""
        q1 = project13(evaluate(query_q(), D1_STORE))
        q2 = project13(evaluate(query_q(), D2_STORE))
        assert ("St. Andrews", "London") in q1
        assert ("St. Andrews", "London") not in q2


class TestTheorem1:
    def test_axis_semantics_agree_with_sigma_evaluation(self):
        """The footnote semantics: axis-NREs over D = NREs over σ(D)."""
        for text in SAMPLE_NRES:
            nre = parse_nre(text)
            native = evaluate_nsparql_nre(D1, nre)
            over_sigma = evaluate_nre(sigma(D1), nre)
            assert native == over_sigma, text

    def test_nsparql_cannot_distinguish_d1_d2(self):
        for text in SAMPLE_NRES:
            nre = parse_nre(text)
            assert evaluate_nsparql_nre(D1, nre) == evaluate_nsparql_nre(D2, nre)

    def test_self_axis(self):
        nre = Self("Edinburgh")
        assert evaluate_nsparql_nre(D1, nre) == {("Edinburgh", "Edinburgh")}
        assert evaluate_nsparql_nre(D1, Self("nowhere")) == frozenset()

    def test_axis_definition(self):
        doc = RDFGraph([("s", "p", "o")])
        assert evaluate_nsparql_nre(doc, parse_nre("next")) == {("s", "o")}
        assert evaluate_nsparql_nre(doc, parse_nre("edge")) == {("s", "p")}
        assert evaluate_nsparql_nre(doc, parse_nre("node")) == {("p", "o")}

    def test_unknown_axis_rejected(self):
        import pytest

        from repro.errors import GraphError

        with pytest.raises(GraphError):
            evaluate_nsparql_nre(D1, parse_nre("sideways"))
