"""Pebble games: the proofs' indistinguishability claims, decided.

The key paper claims this verifies computationally:

* T₃ and T₄ (complete stores over 3 vs 4 objects) are FO³-equivalent —
  so TriAL's 4-object query (which separates them) is outside FO³,
  completing Theorem 4's "FO³ ⊊ TriAL" strictly;
* the same pattern one level down (k = 2).
"""

import pytest

from repro.core import distinct_objects_at_least, evaluate
from repro.errors import LogicError
from repro.logic.games import duplicator_wins, fo_k_equivalent
from repro.rdf.datasets import clique_store
from repro.triplestore import Triplestore


class TestBasics:
    def test_identical_structures(self):
        t = Triplestore([("a", "p", "b")])
        assert duplicator_wins(t, t, 2)

    def test_distinguishable_singletons(self):
        a = Triplestore([("a", "a", "a")])
        b = Triplestore([("a", "a", "b")])
        # E(x,x,x) is a 1-variable sentence separating them.
        assert not duplicator_wins(a, b, 1)

    def test_data_values_matter(self):
        a = Triplestore([("a", "p", "b")], rho={"a": 1, "b": 1})
        b = Triplestore([("a", "p", "b")], rho={"a": 1, "b": 2})
        assert not duplicator_wins(a, b, 2)
        # With one pebble, ∼ needs two placed pebbles... but reusing the
        # single pebble still compares ρ(x) with itself only — the
        # structures agree on all 1-variable sentences.
        assert duplicator_wins(a, b, 1)

    def test_k_validation(self):
        t = Triplestore([("a", "p", "b")])
        with pytest.raises(LogicError):
            duplicator_wins(t, t, 0)

    def test_size_guard(self):
        big = clique_store(8)
        with pytest.raises(LogicError):
            duplicator_wins(big, big, 4, max_positions=1000)


class TestPaperClaims:
    def test_t3_fo3_equivalent_t4(self):
        """Theorem 4's strictness: the duplicator wins the 3-pebble game
        on T₃/T₄ — no FO³ sentence separates them."""
        assert fo_k_equivalent(clique_store(3), clique_store(4), 3)

    def test_t2_fo2_equivalent_t3(self):
        assert fo_k_equivalent(clique_store(2), clique_store(3), 2)

    def test_spoiler_wins_with_enough_pebbles(self):
        """With 4 pebbles the spoiler pins 4 distinct objects — T₃ ≠ T₄."""
        assert not fo_k_equivalent(clique_store(3), clique_store(4), 4)

    def test_trial_separates_what_fo3_cannot(self):
        """The full Theorem 4 picture in one test: the game says FO³
        cannot separate T₃/T₄, while the TriAL query does."""
        t3, t4 = clique_store(3), clique_store(4)
        assert fo_k_equivalent(t3, t4, 3)
        expr = distinct_objects_at_least(4)
        assert evaluate(expr, t3) == frozenset()
        assert evaluate(expr, t4) != frozenset()
