"""Tests for the TriAL text-syntax parser."""

import pytest
from hypothesis import given, settings

from repro.errors import ParseError
from repro.core import (
    Diff,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
    parse,
)
from tests.conftest import expressions


class TestBasics:
    def test_relation_name(self):
        assert parse("E") == Rel("E")
        assert parse("part_of") == Rel("part_of")

    def test_universe(self):
        assert parse("U") == Universe()

    def test_join(self):
        e = parse("join[1,3',3; 2=1'](E, E)")
        assert isinstance(e, Join)
        assert e.out == (0, 5, 2)
        assert len(e.conditions) == 1

    def test_join_without_conditions(self):
        assert parse("join[1,2,3'](E, F)").conditions == ()

    def test_select(self):
        e = parse("select[2='part_of' & rho(1)=rho(3)](E)")
        assert isinstance(e, Select)
        assert len(e.conditions) == 2

    def test_stars(self):
        right = parse("star[1,2,3'; 3=1'](E)")
        left = parse("lstar[1,2,3'; 3=1'](E)")
        assert isinstance(right, Star) and right.side == "right"
        assert isinstance(left, Star) and left.side == "left"

    def test_compl(self):
        e = parse("compl(E)")
        assert e == Diff(Universe(), Rel("E"))

    def test_binary_operators_left_assoc(self):
        e = parse("E | F - G")
        # left-assoc: (E | F) - G
        assert isinstance(e, Diff)
        assert isinstance(e.left, Union)

    def test_parentheses(self):
        e = parse("E - (F | G)")
        assert isinstance(e, Diff) and isinstance(e.right, Union)

    def test_intersection(self):
        assert isinstance(parse("E & F"), Intersect)

    def test_nested_query_q(self):
        e = parse("star[1,2,3'; 3=1' & 2=2'](star[1,3',3; 2=1'](E))")
        from repro.core import query_q

        assert e == query_q()


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "join[1,2,3](E)",  # missing second operand
            "join[1,2](E, F)",  # bad out spec
            "select[1=2](E",  # unbalanced
            "E F",  # trailing input
            "star[1,2,3'; 3=1'](E) extra",
            "join[1,2,3; ***](E, F)",
        ],
    )
    def test_rejects(self, text):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            parse(text)


class TestRoundTrip:
    @given(expressions(max_depth=3))
    @settings(max_examples=60, deadline=None)
    def test_repr_round_trips(self, expr):
        assert parse(repr(expr)) == expr
