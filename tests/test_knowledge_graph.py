"""The knowledge-graph workload: TriAL queries vs the BFS reference."""

import pytest

from repro.core import Const, Cond, Pos, R, evaluate, join, select, star
from repro.workloads.knowledge_graph import (
    PART_OF,
    SUBTYPE_OF,
    knowledge_graph,
    reference_affiliated_via,
)


@pytest.fixture(scope="module")
def kg():
    return knowledge_graph(
        n_people=25, n_orgs=10, n_places=6, n_affiliations=60, seed=3
    )


def affiliated_via_trial(affiliation_type: str):
    """(person, ?, org-or-ancestor) whose type reaches the given one.

    Built from the same reach patterns as query Q:

    1. type_up: close affiliation edges upward through subtype_of*;
    2. keep those whose middle reached ``affiliation_type``;
    3. close the org endpoint upward through part_of*.
    """
    e = R("E")
    # (person, t', org) for every t →subtype_of* t' starting from the
    # affiliation's type: join affiliations with the subtype closure.
    subtype_edges = select(e, (Cond(Pos(1), Const(SUBTYPE_OF)),))
    subtype_closure = star(subtype_edges, "1,2,3'", "3=1'")
    # t reaches t' (including t itself via the affiliation edge).
    lifted = join(e, subtype_closure, "1,3',3", "2=1'")
    lifted_or_direct = lifted | e
    typed = select(lifted_or_direct, (Cond(Pos(1), Const(affiliation_type)),))
    # Organisation closure: org →part_of* ancestor.
    part_edges = select(e, (Cond(Pos(1), Const(PART_OF)),))
    part_closure = star(part_edges, "1,2,3'", "3=1'")
    up = join(typed, part_closure, "1,2,3'", "3=1'")
    return typed | up


class TestWorkload:
    def test_deterministic(self):
        assert knowledge_graph(5, 3, 2, 8, seed=1) == knowledge_graph(5, 3, 2, 8, seed=1)

    def test_middles_are_subjects_too(self, kg):
        """The RDF hallmark the intro stresses: affiliation types occur in
        both predicate and subject positions."""
        middles = {p for _, p, _ in kg.relation("E")}
        subjects = {s for s, _, _ in kg.relation("E")}
        assert middles & subjects

    def test_ontology_present(self, kg):
        assert ("employee", SUBTYPE_OF, "staff") in kg.relation("E")
        assert ("staff", SUBTYPE_OF, "affiliated") in kg.relation("E")


class TestAgainstReference:
    @pytest.mark.parametrize("atype", ["staff", "affiliated", "employee"])
    def test_affiliation_query_matches_reference(self, kg, atype):
        result = evaluate(affiliated_via_trial(atype), kg)
        got_pairs = {
            (s, o) for s, _, o in result if str(s).startswith("person")
        }
        want = reference_affiliated_via(kg, atype)
        assert got_pairs == want

    def test_staff_subset_of_affiliated(self, kg):
        staff = reference_affiliated_via(kg, "staff")
        everyone = reference_affiliated_via(kg, "affiliated")
        assert staff <= everyone
        assert reference_affiliated_via(kg, "employee") <= staff
