"""Golden-file tests for ``explain --physical`` on both backends.

Plan *shape* regressions — a lost index lookup, a flipped build side, a
reach star degrading to a generic fixpoint, a dense/sparse lowering
change — should be caught in review as a readable golden-file diff, not
weeks later by a benchmark.  The goldens pin the full explain output
(header + operator tree with cost estimates) for a fixed store whose
statistics are deterministic.

To regenerate after an intentional planner change::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_explain_golden.py
"""

from __future__ import annotations

import os

import pytest

from repro.core.engines.fast import FastEngine
from repro.core.engines.sharded import ShardedEngine
from repro.core.engines.vectorized import VectorEngine
from repro.core.explain import explain_physical
from repro.core.parser import parse
from repro.triplestore.model import Triplestore

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: Fixed store: two relations, repeated labels, a ρ with collisions.
GOLDEN_STORE = Triplestore(
    {
        "E": [
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "q", "a"),
            ("a", "q", "c"),
            ("d", "p", "a"),
        ],
        "F": [("b", "r", "d"), ("c", "r", "d")],
    },
    rho={"a": 0, "b": 1, "c": 0, "d": 1, "p": 0, "q": 1, "r": 0},
)

#: (name, query) pairs covering the plan shapes worth pinning.
CASES = [
    ("indexed_select", "select[2='p' & rho(1)=rho(3)](E)"),
    ("join_chain", "join[1,2,3'; 3=1'](join[1,2,3'; 3=1'](E, E), E)"),
    ("eta_join", "join[1,3',3; 2=1' & rho(2)=rho(2')](E, F)"),
    ("reach_star", "star[1,2,3'; 3=1'](E)"),
    ("general_star", "star[1,2,2'; 3=1' & 1!=3'](E)"),
    ("set_ops", "((E | F) - select[1=3](E))"),
]

BACKENDS = {
    "set": lambda: FastEngine(),
    "columnar": lambda: VectorEngine(),
    # Shard count pinned: the goldens must not depend on REPRO_SHARDS.
    # executor pinned: goldens must not change under REPRO_SHARD_EXECUTOR.
    "sharded": lambda: ShardedEngine(shards=4, executor="thread"),
}


def _render(query: str, backend: str) -> str:
    expr = parse(query)
    engine = BACKENDS[backend]()
    return explain_physical(expr, GOLDEN_STORE, engine=engine) + "\n"


def _render_json(query: str, backend: str) -> str:
    from repro.api import explain_report

    expr = parse(query)
    engine = BACKENDS[backend]()
    return explain_report(expr, GOLDEN_STORE, engine=engine).to_json() + "\n"


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("name,query", CASES, ids=[c[0] for c in CASES])
def test_explain_json_matches_golden(name, query, backend):
    """The structured report (``explain --json``) is pinned like the text.

    Every golden must parse as JSON regardless of drift, so a rendering
    bug can never hide behind an UPDATE_GOLDEN refresh.
    """
    import json

    rendered = _render_json(query, backend)
    json.loads(rendered)
    path = os.path.join(GOLDEN_DIR, f"{name}_{backend}.json")
    if os.environ.get("UPDATE_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(rendered)
        pytest.skip(f"regenerated {path}")
    with open(path, encoding="utf-8") as fp:
        expected = fp.read()
    assert rendered == expected, (
        f"explain --json output drifted from {path}; if the plan "
        "change is intentional, regenerate with UPDATE_GOLDEN=1"
    )


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("name,query", CASES, ids=[c[0] for c in CASES])
def test_explain_physical_matches_golden(name, query, backend):
    rendered = _render(query, backend)
    path = os.path.join(GOLDEN_DIR, f"{name}_{backend}.txt")
    if os.environ.get("UPDATE_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(rendered)
        pytest.skip(f"regenerated {path}")
    with open(path, encoding="utf-8") as fp:
        expected = fp.read()
    assert rendered == expected, (
        f"explain --physical output drifted from {path}; if the plan "
        "change is intentional, regenerate with UPDATE_GOLDEN=1"
    )


def test_goldens_differ_between_backends():
    """The columnar goldens must actually show the lowering (not be copies)."""
    rendered_set = _render("star[1,2,3'; 3=1'](E)", "set")
    rendered_col = _render("star[1,2,3'; 3=1'](E)", "columnar")
    assert rendered_set != rendered_col
    assert "[dense]" in rendered_col or "[sparse]" in rendered_col
    assert "backend    : columnar" in rendered_col


def test_sharded_goldens_show_join_strategies():
    """The sharded goldens must show the shard lowering annotations."""
    rendered = _render("join[1,2,3'; 3=1'](join[1,2,3'; 3=1'](E, E), E)", "sharded")
    assert "backend    : sharded (4-way hash-partitioned" in rendered
    assert "shard=" in rendered
    # A subject-partitioned scan joined on 3=1' has its right operand
    # co-partitioned and its left exchanged.
    assert "shard=repartition(left)" in rendered
