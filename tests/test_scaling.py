"""E7–E9 (shape checks): the fragment algorithms beat the naive ones and
scaling grows at most polynomially as the theorems predict.

Timing assertions in unit tests are kept qualitative (A faster than B at
a size where the asymptotics dominate) — the precise slope measurements
live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.bench import Measurement, fit_loglog_slope, sweep, time_callable
from repro.core import FastEngine, HashJoinEngine, NaiveEngine, R, join, star
from repro.workloads import chain_store, random_store

REACH = star(R("E"), "1,2,3'", "3=1'")
JOIN = join(R("E"), R("E"), "1,2,3'", "3=1'")


@pytest.mark.slow
class TestRelativePerformance:
    def test_fast_engine_beats_naive_on_reach(self):
        store = chain_store(120)
        t_fast = time_callable(lambda: FastEngine().evaluate(REACH, store), repeats=1)
        t_naive = time_callable(lambda: NaiveEngine().evaluate(REACH, store), repeats=1)
        assert t_fast < t_naive

    def test_hash_join_beats_nested_loop(self):
        store = random_store(60, 1500, seed=1)
        t_hash = time_callable(lambda: HashJoinEngine().evaluate(JOIN, store), repeats=1)
        t_naive = time_callable(lambda: NaiveEngine().evaluate(JOIN, store), repeats=1)
        assert t_hash < t_naive


@pytest.mark.slow
class TestScalingShapes:
    def test_naive_join_is_superlinear(self):
        """Theorem 3: nested-loop joins grow ~quadratically in |T|."""
        points = sweep(
            lambda n: random_store(n, n * 12, seed=n),
            lambda s: NaiveEngine().evaluate(JOIN, s),
            sizes=(20, 40, 80, 160),
            repeats=1,
        )
        slope = fit_loglog_slope(points)
        assert slope > 1.3, points

    def test_fast_reach_is_subquadratic(self):
        """Proposition 5: the BFS star stays near O(|O|·|T|).

        On a chain the *output itself* is Θ(n²), so slopes land near 2;
        the point of the assertion is staying well under the naive
        fixpoint's ~3 (checked by the benchmark suite with more data).
        """
        points = sweep(
            chain_store,
            lambda s: FastEngine().evaluate(REACH, s),
            sizes=(40, 80, 160, 320),
            repeats=1,
        )
        slope = fit_loglog_slope(points)
        assert slope < 2.7, points
