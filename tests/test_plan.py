"""The physical planner: compilation, cost model, operator semantics."""

import pytest
from hypothesis import given, settings

from repro.core import (
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    R,
    join,
    query_q,
    select,
    star,
)
from repro.core.expressions import Rel, Select
from repro.core.parser import parse
from repro.core.plan import (
    ExecContext,
    FilterOp,
    HashJoinOp,
    IndexLookupOp,
    ReachStarOp,
    ScanOp,
    StarOp,
    UnionOp,
    compile_plan,
)
from repro.errors import UnknownRelationError
from repro.rdf import figure1
from repro.triplestore import DEFAULT_STATS, Triplestore
from repro.workloads import random_store, transport_network
from tests.conftest import expressions, stores


def run(plan, store, **kw):
    return plan.execute(ExecContext(store, **kw))


class TestCompilation:
    def test_rel_becomes_scan(self):
        plan = compile_plan(R("E"), figure1())
        assert isinstance(plan, ScanOp)
        assert plan.name == "E"
        assert plan.est_rows == len(figure1().relation("E"))

    def test_constant_select_becomes_index_lookup(self):
        plan = compile_plan(parse("select[2='part_of'](E)"), figure1())
        assert isinstance(plan, IndexLookupOp)
        assert plan.positions == (1,)
        assert plan.key == ("part_of",)

    def test_nonconstant_select_becomes_filter(self):
        plan = compile_plan(parse("select[1=2](E)"), figure1())
        assert isinstance(plan, FilterOp)

    def test_rho_select_is_not_index_served(self):
        """η-conditions go through ρ, which store indexes cannot key."""
        plan = compile_plan(parse("select[rho(1)=rho(2)](E)"), figure1())
        assert isinstance(plan, FilterOp)

    def test_reach_star_routed_by_fast_engine_only(self):
        expr = star(R("E"), "1,2,3'", "3=1'")
        assert isinstance(FastEngine().compile(expr, figure1()), ReachStarOp)
        assert isinstance(HashJoinEngine().compile(expr, figure1()), StarOp)

    def test_general_star_is_generic_for_both(self):
        expr = star(R("E"), "1,2,2'", "3=1'")
        assert isinstance(FastEngine().compile(expr, figure1()), StarOp)

    def test_shared_subexpressions_compile_once(self):
        expr = parse("(E | E)")
        plan = compile_plan(expr, figure1())
        assert isinstance(plan, UnionOp)
        assert plan.left is plan.right

    def test_compiles_without_store(self):
        plan = compile_plan(query_q())
        assert plan.est_cost > 0
        assert "Star" in plan.pretty()

    def test_plan_pretty_mentions_costs(self):
        text = compile_plan(query_q(), figure1()).pretty()
        assert "rows≈" in text and "cost≈" in text


class TestBuildSideChoice:
    def test_base_scan_build_side_uses_store_index(self):
        plan = compile_plan(parse("join[1,2,3'; 3=1'](E, E)"), figure1())
        assert isinstance(plan, HashJoinOp)
        assert plan.index_positions == (0,)

    def test_eta_key_disables_store_index(self):
        plan = compile_plan(parse("join[1,2,3'; rho(3)=rho(1')](E, E)"), figure1())
        assert isinstance(plan, HashJoinOp)
        assert plan.index_positions is None

    def test_smaller_side_is_built_when_no_index(self):
        store = Triplestore(
            {
                "Big": [(f"s{i}", "p", f"o{i}") for i in range(100)],
                "Small": [("a", "p", "b")],
            }
        )
        # Wrap both sides so neither is a plain scan (no store index).
        expr = join(
            select(R("Big"), "1!=2"), select(R("Small"), "1!=2"), "1,2,3'", "3=1'"
        )
        plan = compile_plan(expr, store)
        assert isinstance(plan, HashJoinOp)
        assert plan.build_side == "right"
        swapped = join(
            select(R("Small"), "1!=2"), select(R("Big"), "1!=2"), "1,2,3'", "3=1'"
        )
        plan = compile_plan(swapped, store)
        assert plan.build_side == "left"


class TestCostModel:
    @given(expressions(max_depth=3, allow_star=True), stores())
    @settings(max_examples=60, deadline=None)
    def test_cumulative_cost_is_monotone(self, expr, store):
        """Every node's cumulative cost strictly exceeds each child's."""
        plan = compile_plan(expr, store)
        for node in plan.walk():
            for child in node.children():
                assert node.est_cost > child.est_cost
                assert child.est_rows >= 0

    def test_scan_cost_grows_with_cardinality(self):
        small = random_store(20, 50, seed=1)
        large = random_store(20, 400, seed=1)
        expr = parse("join[1,2,3'; 3=1'](E, E)")
        assert (
            compile_plan(expr, large).est_cost > compile_plan(expr, small).est_cost
        )

    def test_filter_estimates_fewer_rows_than_child(self):
        plan = compile_plan(parse("select[1=2](E)"), random_store(20, 200, seed=2))
        assert isinstance(plan, FilterOp)
        assert plan.est_rows < plan.child.est_rows

    def test_index_lookup_cheaper_than_scan_filter(self):
        """The planner's reason to exist: the index path must cost less."""
        store = random_store(40, 500, seed=17)
        lookup = compile_plan(parse("select[2='l0'](E)"), store)
        scan_filter = FilterOp(
            ScanOp("E", 500.0, 501.0), parse("select[2='l0'](E)").conditions, 50.0, 1002.0
        )
        assert isinstance(lookup, IndexLookupOp)
        assert lookup.est_cost < scan_filter.est_cost

    def test_default_stats_used_without_store(self):
        plan = compile_plan(parse("join[1,2,3'; 3=1'](E, E)"), stats=DEFAULT_STATS)
        assert plan.est_rows > 0


class TestExecutionSemantics:
    @given(expressions(max_depth=3, allow_star=True), stores())
    @settings(max_examples=80, deadline=None)
    def test_plan_execution_matches_naive_oracle(self, expr, store):
        plan = compile_plan(expr, store)
        assert run(plan, store) == NaiveEngine().evaluate(expr, store)

    @given(expressions(max_depth=3, allow_star=True), stores())
    @settings(max_examples=60, deadline=None)
    def test_reach_routing_never_changes_results(self, expr, store):
        with_reach = compile_plan(expr, store, use_reach=True)
        without = compile_plan(expr, store, use_reach=False)
        assert run(with_reach, store) == run(without, store)

    def test_unknown_relation_raises_at_execution(self):
        plan = compile_plan(parse("join[1,2,3](Nope, E)"), figure1())
        with pytest.raises(UnknownRelationError):
            run(plan, figure1())

    def test_index_lookup_on_real_data(self):
        store = figure1()
        plan = compile_plan(parse("select[2='part_of'](E)"), store)
        assert run(plan, store) == {
            t for t in store.relation("E") if t[1] == "part_of"
        }

    def test_query_q_through_planner(self):
        store = transport_network(n_cities=10, n_services=3, n_companies=2, seed=1)
        expected = NaiveEngine().evaluate(query_q(), store)
        for use_reach in (False, True):
            assert run(compile_plan(query_q(), store, use_reach=use_reach), store) == expected

    def test_memoised_execution_of_shared_subplans(self):
        calls = []
        original = ScanOp._execute

        def counting(self, ctx):
            calls.append(self.name)
            return original(self, ctx)

        expr = parse("(E | E)")
        plan = compile_plan(expr, figure1())
        ScanOp._execute = counting
        try:
            run(plan, figure1())
        finally:
            ScanOp._execute = original
        assert calls == ["E"]


class TestPlanCache:
    def test_engine_reuses_prepared_plans(self):
        engine = HashJoinEngine()
        expr = parse("join[1,2,3'; 3=1'](E, E)")
        engine.evaluate(expr, figure1())
        first = engine._plan_cache[expr]
        engine.evaluate(expr, figure1())
        assert engine._plan_cache[expr] is first

    def test_prepared_plan_is_correct_on_a_different_store(self):
        engine = HashJoinEngine()
        expr = parse("join[1,2,3'; 3=1'](E, E)")
        engine.evaluate(expr, figure1())
        other = random_store(10, 40, seed=5)
        assert engine.evaluate(expr, other) == NaiveEngine().evaluate(expr, other)
