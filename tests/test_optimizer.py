"""The optimiser's rewrites preserve semantics and fragments."""

from hypothesis import given, settings

from repro.core import (
    Diff,
    HashJoinEngine,
    Intersect,
    R,
    Union,
    evaluate,
    in_reach_ta_eq,
    in_trial_eq,
    is_equality_only,
    join,
    select,
    star,
)
from repro.core.optimizer import is_empty_expr, merge_selects, optimize, push_conditions
from tests.conftest import expressions, stores

ENGINE = HashJoinEngine()


class TestRules:
    def test_merge_selects(self):
        e = select(select(select(R("E"), "1=2"), "2=3"), "rho(1)=rho(3)")
        merged = merge_selects(e)
        assert merged.expr == R("E")
        assert len(merged.conditions) == 3

    def test_push_local_conditions(self):
        e = join(R("E"), R("F"), "1,2,3'", "1=2 & 3=1' & 2'=3'")
        pushed = push_conditions(e)
        assert pushed.conditions == tuple(
            c for c in e.conditions if c.positions()[0].index == 2
        )
        assert pushed.left.conditions  # 1=2 went left
        assert pushed.right.conditions  # 2'=3' went right, shifted down

    def test_select_into_join(self):
        e = select(join(R("E"), R("F"), "1,2,3'"), "1=3")
        out = optimize(e)
        # 1=3 over output (1,2,3') == join condition 1=3'.
        from repro.core.conditions import parse_conditions

        assert out.conditions == parse_conditions("1=3'")

    def test_union_idempotent(self):
        assert optimize(Union(R("E"), R("E"))) == R("E")

    def test_diff_self_is_empty(self):
        out = optimize(Diff(R("E"), R("E")))
        assert is_empty_expr(out)

    def test_empty_propagates_through_join(self):
        empty = Diff(R("E"), R("E"))
        out = optimize(join(empty, R("E"), "1,2,3"))
        assert is_empty_expr(out)

    def test_statically_false_condition(self):
        out = optimize(join(R("E"), R("E"), "1,2,3", "'a'='b'"))
        assert is_empty_expr(out)

    def test_double_star_collapsed(self):
        inner = star(R("E"), "1,2,3'", "3=1'")
        outer = star(inner, "1,2,3'", "3=1'")
        assert optimize(outer) == optimize(inner)

    def test_different_stars_not_collapsed(self):
        inner = star(R("E"), "1,2,3'", "3=1'")
        outer = star(inner, "1,2,3'", "3=1' & 2=2'")
        assert optimize(outer).expr == inner

    def test_empty_select_dropped(self):
        assert optimize(select(R("E"), "")) == R("E")

    def test_intersect_with_empty(self):
        empty = Diff(R("E"), R("E"))
        assert is_empty_expr(optimize(Intersect(R("E"), empty)))


class TestSemanticsPreserved:
    @given(expressions(max_depth=3, allow_star=True), stores())
    @settings(max_examples=100, deadline=None)
    def test_optimize_preserves_semantics(self, expr, store):
        optimized = optimize(expr)
        assert evaluate(optimized, store, ENGINE) == evaluate(expr, store, ENGINE)

    @given(expressions(max_depth=3, allow_star=True))
    @settings(max_examples=60, deadline=None)
    def test_optimize_preserves_fragments(self, expr):
        optimized = optimize(expr)
        if is_equality_only(expr):
            assert is_equality_only(optimized)
        if in_trial_eq(expr):
            assert in_trial_eq(optimized)
        if in_reach_ta_eq(expr):
            assert in_reach_ta_eq(optimized)

    @given(expressions(max_depth=3, allow_star=True))
    @settings(max_examples=40, deadline=None)
    def test_optimize_is_idempotent(self, expr):
        once = optimize(expr)
        assert optimize(once) == once
