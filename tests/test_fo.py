"""Tests for the FO substrate: satisfies/answers agreement, variables,
capture-avoiding renaming."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.logic import (
    And,
    ConstT,
    Eq,
    Exists,
    Forall,
    Not,
    Or,
    RelAtom,
    Sim,
    Var,
    active_domain,
    answers,
    exists,
    forall,
    rename,
    satisfies,
)
from repro.triplestore import Triplestore
from tests.conftest import stores

VARS = ("x", "y", "z")


@st.composite
def formulas(draw, depth: int = 3):
    if depth <= 0:
        kind = draw(st.sampled_from(("rel", "eq", "sim")))
    else:
        kind = draw(
            st.sampled_from(("rel", "eq", "sim", "not", "and", "or", "exists", "forall"))
        )
    if kind == "rel":
        terms = tuple(Var(draw(st.sampled_from(VARS))) for _ in range(3))
        return RelAtom("E", terms)
    if kind == "eq":
        return Eq(Var(draw(st.sampled_from(VARS))), Var(draw(st.sampled_from(VARS))))
    if kind == "sim":
        return Sim(Var(draw(st.sampled_from(VARS))), Var(draw(st.sampled_from(VARS))))
    if kind == "not":
        return Not(draw(formulas(depth=depth - 1)))
    if kind in ("and", "or"):
        cls = And if kind == "and" else Or
        return cls(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    cls = Exists if kind == "exists" else Forall
    return cls(draw(st.sampled_from(VARS)), draw(formulas(depth=depth - 1)))


@given(formulas(), stores(max_triples=8))
@settings(max_examples=80, deadline=None)
def test_answers_matches_satisfies(formula, store):
    """The bottom-up evaluator agrees with the truth-recursive one."""
    domain = sorted(active_domain(store), key=repr)
    free = tuple(sorted(formula.free_vars()))
    got = answers(formula, store, free)
    want = frozenset(
        combo
        for combo in itertools.product(domain, repeat=len(free))
        if satisfies(formula, store, dict(zip(free, combo)))
    )
    assert got == want


class TestBasics:
    STORE = Triplestore(
        [("a", "p", "b"), ("b", "p", "a")], rho={"a": 1, "b": 1, "p": 2}
    )

    def test_atom(self):
        assert satisfies(
            RelAtom("E", (Var("x"), Var("y"), Var("z"))),
            self.STORE,
            {"x": "a", "y": "p", "z": "b"},
        )

    def test_constants_in_atoms(self):
        phi = RelAtom("E", (ConstT("a"), Var("y"), ConstT("b")))
        assert answers(phi, self.STORE, ("y",)) == {("p",)}

    def test_sim_uses_rho(self):
        assert satisfies(Sim(Var("x"), Var("y")), self.STORE, {"x": "a", "y": "b"})
        assert not satisfies(Sim(Var("x"), Var("y")), self.STORE, {"x": "a", "y": "p"})

    def test_exists_forall(self):
        phi = exists("x", "y", "z", RelAtom("E", (Var("x"), Var("y"), Var("z"))))
        assert satisfies(phi, self.STORE)
        psi = forall("x", Eq(Var("x"), Var("x")))
        assert satisfies(psi, self.STORE)

    def test_sentence_answers(self):
        phi = exists("x", "y", "z", RelAtom("E", (Var("x"), Var("y"), Var("z"))))
        assert answers(phi, self.STORE) == {()}
        assert answers(Not(phi), self.STORE) == frozenset()

    def test_unbound_variable_raises(self):
        with pytest.raises(LogicError):
            satisfies(Eq(Var("x"), Var("y")), self.STORE, {"x": "a"})

    def test_num_variables_counts_names(self):
        phi = Exists("x", And(Eq(Var("x"), Var("y")), Exists("x", Eq(Var("x"), Var("x")))))
        assert phi.num_variables() == 2

    def test_repeated_vars_in_atom(self):
        phi = RelAtom("E", (Var("x"), Var("y"), Var("x")))
        t = Triplestore([("a", "p", "a"), ("a", "q", "b")])
        assert answers(phi, t, ("x", "y")) == {("a", "p")}


class TestRename:
    POOL = ("v1", "v2", "v3", "v4", "v5", "v6")

    def test_free_substitution(self):
        phi = RelAtom("E", (Var("v1"), Var("v2"), Var("v3")))
        out = rename(phi, {"v1": "v4"}, self.POOL)
        assert out == RelAtom("E", (Var("v4"), Var("v2"), Var("v3")))

    def test_bound_variables_untouched(self):
        phi = Exists("v1", Eq(Var("v1"), Var("v2")))
        out = rename(phi, {"v1": "v5"}, self.POOL)
        assert out == phi

    def test_capture_avoided(self):
        # ∃v4 (v1 = v4); renaming v1→v4 must not capture.
        phi = Exists("v4", Eq(Var("v1"), Var("v4")))
        out = rename(phi, {"v1": "v4"}, self.POOL)
        assert isinstance(out, Exists)
        assert out.var != "v4"
        assert Eq(Var("v4"), Var(out.var)) == out.formula

    def test_swap_is_simultaneous(self):
        phi = Eq(Var("v1"), Var("v2"))
        out = rename(phi, {"v1": "v2", "v2": "v1"}, self.POOL)
        assert out == Eq(Var("v2"), Var("v1"))

    def test_semantics_preserved_under_rename(self):
        store = Triplestore([("a", "p", "b"), ("b", "q", "a")])
        phi = Exists("v4", And(
            RelAtom("E", (Var("v1"), Var("v4"), Var("v2"))),
            RelAtom("E", (Var("v2"), Var("v4"), Var("v1"))),
        ))
        renamed = rename(phi, {"v1": "v2", "v2": "v1"}, self.POOL)
        for a, b in itertools.product(sorted(active_domain(store)), repeat=2):
            assert satisfies(phi, store, {"v1": a, "v2": b}) == satisfies(
                renamed, store, {"v2": a, "v1": b}
            )
