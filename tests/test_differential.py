"""The randomized differential harness, run as part of the suite.

All engines — the NaiveEngine oracle, HashJoinEngine and FastEngine
(planner on *and* off), the columnar VectorEngine and the
hash-partitioned ShardedEngine — must agree on every seeded random
(store, query) case.  The default budget is 200
TriAL cases plus 60 graph-language (GXPath/NRE translation) cases;
``DIFFCHECK_CASES`` scales it up (the CI nightly runs 10×).  On failure
the assertion message carries a shrunk, executable repro snippet.
"""

from __future__ import annotations

import os

import pytest

from repro.core import NaiveEngine
from repro.core.expressions import Rel, Star
from repro.triplestore.model import Triplestore
from tests.diffcheck import (
    default_engines,
    random_expression,
    random_triplestore,
    repro_snippet,
    run_differential,
    shrink_failure,
)

#: Total TriAL-case budget, split across the seed shards below.
TRIAL_CASES = int(os.environ.get("DIFFCHECK_CASES", "200"))
GRAPH_CASES = max(20, TRIAL_CASES // 10) * 2
SHARDS = 4


def _assert_no_failures(failures):
    if failures:
        raise AssertionError(
            f"{len(failures)} cross-engine disagreement(s); first repro:\n\n"
            + failures[0].snippet()
        )


@pytest.mark.parametrize("shard", range(SHARDS))
def test_trial_cases_agree_across_engines(shard):
    """NaiveEngine ≡ HashJoin ≡ Fast (planner on/off) ≡ Vector on TriAL(*)."""
    _assert_no_failures(
        run_differential(
            TRIAL_CASES // SHARDS, seed=shard, case_kinds=("trial",)
        )
    )


def test_semantic_cases_agree_across_engines():
    """Analyzer-triggering cases: contradictory/redundant conditions,
    Diff(e, e) shells and trivial stars, checked raw and optimized
    (the ``+opt`` axis) against the raw naive witness."""
    _assert_no_failures(
        run_differential(
            max(60, TRIAL_CASES // 2), seed=17, case_kinds=("semantic",)
        )
    )


def test_graph_language_cases_agree_across_engines():
    """The same matrix over GXPath/NRE → TriAL* translations."""
    _assert_no_failures(
        run_differential(GRAPH_CASES, seed=99, case_kinds=("gxpath", "nre"))
    )


def test_harness_detects_a_broken_engine():
    """Sanity: a deliberately wrong engine is caught and shrunk."""

    class BrokenEngine(NaiveEngine):
        def evaluate(self, expr, store):
            result = super().evaluate(expr, store)
            if isinstance(expr, Star) and result:
                return frozenset(list(result)[1:])  # drop one triple
            return result

    engines = {**default_engines(), "broken": BrokenEngine()}
    failures = run_differential(
        80, seed=5, engines=engines, case_kinds=("trial",), max_failures=1
    )
    assert failures, "the broken engine was never caught"
    snippet = failures[0].snippet()
    assert "Triplestore(" in snippet and "parse(" in snippet
    assert "broken" in "".join(map(str, failures[0].outcomes))


def test_shrinker_minimises_stores():
    """Shrinking drops triples irrelevant to a disagreement."""

    class WrongOnLoops(NaiveEngine):
        def evaluate(self, expr, store):
            result = super().evaluate(expr, store)
            return frozenset(t for t in result if t[0] != t[2])

    engines = {"naive": NaiveEngine(), "wrong": WrongOnLoops()}
    store = Triplestore(
        [("a", "p", "a"), ("b", "p", "c"), ("c", "q", "d"), ("d", "q", "e")]
    )
    expr, small = shrink_failure(engines, Rel("E"), store)
    assert expr == Rel("E")
    assert small.relation("E") == {("a", "p", "a")}


def test_repro_snippet_is_executable():
    """The snippet a failure prints must itself run (and pass, here)."""
    store = random_triplestore(__import__("random").Random(1))
    expr = random_expression(__import__("random").Random(2), relations=store.relation_names)
    snippet = repro_snippet(expr, store)
    exec(compile(snippet, "<repro>", "exec"), {})
