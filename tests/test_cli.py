"""CLI smoke and behaviour tests."""

import pytest

from repro.cli import main
from repro.rdf.datasets import figure1
from repro.triplestore import dump_path


@pytest.fixture()
def store_path(tmp_path):
    path = tmp_path / "fig1.tstore"
    dump_path(figure1(), str(path))
    return str(path)


@pytest.fixture()
def program_path(tmp_path):
    path = tmp_path / "q.dl"
    path.write_text(
        "R(x,y,z) :- E(x,y,z).\n"
        "R(x,y,w) :- R(x,y,z), E(z,u,w).\n"
        "Ans(x,y,z) :- R(x,y,z).\n"
    )
    return str(path)


class TestQuery:
    def test_basic_query(self, store_path, capsys):
        assert main(["query", store_path, "E"]) == 0
        out = capsys.readouterr().out
        assert "# 7 triples" in out

    def test_star_query_with_engine(self, store_path, capsys):
        code = main(
            ["query", store_path, "star[1,2,3'; 3=1'](E)", "--engine", "fast", "--limit", "0"]
        )
        assert code == 0
        assert "Brussels" in capsys.readouterr().out

    def test_optimize_flag(self, store_path, capsys):
        code = main(
            ["query", store_path, "select[](select[2='part_of'](E))", "--optimize"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "optimized" in err

    def test_limit_truncates(self, store_path, capsys):
        assert main(["query", store_path, "E", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "more" in out
        assert "# 7 triples" in out  # total row count still reported

    def test_limit_decodes_only_shown_rows(self, store_path, capsys, monkeypatch):
        from repro.triplestore.columnar import ColumnarStore

        decoded = []
        real = ColumnarStore.decode_list

        def counting(self, keys):
            decoded.append(len(keys))
            return real(self, keys)

        monkeypatch.setattr(ColumnarStore, "decode_list", counting)
        code = main(
            ["query", store_path, "E", "--backend", "columnar", "--limit", "2"]
        )
        assert code == 0
        assert sum(decoded) == 2  # the full 7-row relation was never decoded
        assert "# 7 triples" in capsys.readouterr().out

    def test_param_binding(self, store_path, capsys):
        code = main(
            ["query", store_path, "select[2=$label](E)", "--param", "label=part_of"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "part_of" in out and "# 4 triples" in out

    def test_unbound_param_is_reported(self, store_path, capsys):
        assert main(["query", store_path, "select[2=$label](E)"]) == 1
        assert "label" in capsys.readouterr().err

    def test_malformed_param_is_reported(self, store_path, capsys):
        code = main(["query", store_path, "E", "--param", "nonsense"])
        assert code == 1
        assert "--param" in capsys.readouterr().err

    def test_gxpath_lang_prints_pairs(self, store_path, capsys):
        code = main(["query", store_path, "next", "--lang", "gxpath"])
        assert code == 0
        assert "pairs" in capsys.readouterr().out

    def test_parse_error_is_reported(self, store_path, capsys):
        assert main(["query", store_path, "join[**](E)"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["query", "/nonexistent.tstore", "E"]) == 1


class TestDatalog:
    def test_run_program(self, store_path, program_path, capsys):
        code = main(["datalog", store_path, program_path, "--limit", "0"])
        assert code == 0
        assert "triples" in capsys.readouterr().out

    def test_validation_pass(self, store_path, program_path, capsys):
        code = main(
            ["datalog", store_path, program_path, "--validate", "ReachTripleDatalog"]
        )
        assert code == 0
        assert "valid" in capsys.readouterr().err

    def test_validation_fail(self, store_path, tmp_path, capsys):
        bad = tmp_path / "bad.dl"
        bad.write_text("Ans(x,y,z) :- E(x,y,z), E(z,y,x), E(y,x,z).\n")
        code = main(["datalog", store_path, str(bad), "--validate", "TripleDatalog"])
        assert code == 1


class TestInfo:
    def test_info(self, store_path, capsys):
        assert main(["info", store_path]) == 0
        out = capsys.readouterr().out
        assert "objects:   11" in out
        assert "triples:   7" in out


class TestExplain:
    def test_explain_query(self, capsys):
        assert main(["explain", "star[1,2,3'; 3=1'](E)"]) == 0
        out = capsys.readouterr().out
        assert "reachTA=" in out
        assert "Proposition 5" in out

    def test_explain_with_optimize(self, capsys):
        assert main(["explain", "select[](E) | select[](E)", "--optimize"]) == 0
        assert "TriAL" in capsys.readouterr().out

    def test_explain_json_is_valid_json(self, store_path, capsys):
        import json

        code = main(
            ["explain", "join[1,2,3'; 3=1'](E, E)", "--json", "--store", store_path]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["plan"]["op"] == "HashJoin"
        assert data["statistics"] == {"triples": 7, "objects": 11}

    def test_explain_json_sharded_strategies(self, capsys):
        import json

        code = main(
            [
                "explain",
                "join[1,2,3'; 3=1'](E, E)",
                "--json",
                "--backend",
                "sharded",
                "--shards",
                "4",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["plan"]["shard_strategy"]
