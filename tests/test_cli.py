"""CLI smoke and behaviour tests."""

import pytest

from repro.cli import main
from repro.rdf.datasets import figure1
from repro.triplestore import dump_path


@pytest.fixture()
def store_path(tmp_path):
    path = tmp_path / "fig1.tstore"
    dump_path(figure1(), str(path))
    return str(path)


@pytest.fixture()
def program_path(tmp_path):
    path = tmp_path / "q.dl"
    path.write_text(
        "R(x,y,z) :- E(x,y,z).\n"
        "R(x,y,w) :- R(x,y,z), E(z,u,w).\n"
        "Ans(x,y,z) :- R(x,y,z).\n"
    )
    return str(path)


class TestQuery:
    def test_basic_query(self, store_path, capsys):
        assert main(["query", store_path, "E"]) == 0
        out = capsys.readouterr().out
        assert "# 7 triples" in out

    def test_star_query_with_engine(self, store_path, capsys):
        code = main(
            ["query", store_path, "star[1,2,3'; 3=1'](E)", "--engine", "fast", "--limit", "0"]
        )
        assert code == 0
        assert "Brussels" in capsys.readouterr().out

    def test_optimize_flag(self, store_path, capsys):
        code = main(
            ["query", store_path, "select[](select[2='part_of'](E))", "--optimize"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "optimized" in err

    def test_limit_truncates(self, store_path, capsys):
        assert main(["query", store_path, "E", "--limit", "2"]) == 0
        assert "more" in capsys.readouterr().out

    def test_parse_error_is_reported(self, store_path, capsys):
        assert main(["query", store_path, "join[**](E)"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["query", "/nonexistent.tstore", "E"]) == 1


class TestDatalog:
    def test_run_program(self, store_path, program_path, capsys):
        code = main(["datalog", store_path, program_path, "--limit", "0"])
        assert code == 0
        assert "triples" in capsys.readouterr().out

    def test_validation_pass(self, store_path, program_path, capsys):
        code = main(
            ["datalog", store_path, program_path, "--validate", "ReachTripleDatalog"]
        )
        assert code == 0
        assert "valid" in capsys.readouterr().err

    def test_validation_fail(self, store_path, tmp_path, capsys):
        bad = tmp_path / "bad.dl"
        bad.write_text("Ans(x,y,z) :- E(x,y,z), E(z,y,x), E(y,x,z).\n")
        code = main(["datalog", store_path, str(bad), "--validate", "TripleDatalog"])
        assert code == 1


class TestInfo:
    def test_info(self, store_path, capsys):
        assert main(["info", store_path]) == 0
        out = capsys.readouterr().out
        assert "objects:   11" in out
        assert "triples:   7" in out


class TestExplain:
    def test_explain_query(self, capsys):
        assert main(["explain", "star[1,2,3'; 3=1'](E)"]) == 0
        out = capsys.readouterr().out
        assert "reachTA=" in out
        assert "Proposition 5" in out

    def test_explain_with_optimize(self, capsys):
        assert main(["explain", "select[](E) | select[](E)", "--optimize"]) == 0
        assert "TriAL" in capsys.readouterr().out
