"""E10: fragment validation and the Prop 2 / Thm 2 round trips."""

import pytest
from hypothesis import given, settings

from repro.errors import TranslationError
from repro.core import R, evaluate, example2_expr, query_q, reach_forward, select
from repro.datalog import (
    datalog_to_trial,
    is_nonrecursive,
    is_reach_triple_datalog,
    is_triple_datalog,
    is_triple_datalog_rule,
    parse_program,
    run_program,
    trial_to_datalog,
    validate_fragment,
)
from repro.rdf.datasets import figure1
from tests.conftest import expressions, stores


class TestFragmentValidation:
    def test_shape_rule_ok(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), F(z,y,x), ~(x,y), x != z.")
        assert is_triple_datalog_rule(p.rules[0])

    def test_three_rel_literals_rejected(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), E(z,y,x), E(y,x,z).")
        assert not is_triple_datalog_rule(p.rules[0])

    def test_nonrecursive_detection(self):
        rec = parse_program("P(x,y,z) :- E(x,y,z).\nP(x,y,w) :- P(x,y,z), E(z,u,w).\nAns(x,y,z) :- P(x,y,z).")
        nonrec = parse_program("P(x,y,z) :- E(x,y,z).\nAns(x,y,z) :- P(x,y,z).")
        assert not is_nonrecursive(rec)
        assert is_nonrecursive(nonrec)
        assert is_reach_triple_datalog(rec)
        assert is_triple_datalog(nonrec)

    def test_reach_fragment_rejects_bad_base(self):
        p = parse_program(
            """
            P(x,y,z) :- E(x,y,z), x != y.
            P(x,y,w) :- P(x,y,z), E(z,u,w).
            Ans(x,y,z) :- P(x,y,z).
            """
        )
        assert not is_reach_triple_datalog(p)

    def test_reach_fragment_rejects_three_rules(self):
        p = parse_program(
            """
            P(x,y,z) :- E(x,y,z).
            P(x,y,z) :- E(z,y,x).
            P(x,y,w) :- P(x,y,z), E(z,u,w).
            Ans(x,y,z) :- P(x,y,z).
            """
        )
        assert not is_reach_triple_datalog(p)

    def test_validate_fragment_raises(self):
        from repro.errors import DatalogError

        rec = parse_program(
            "P(x,y,z) :- E(x,y,z).\nP(x,y,w) :- P(x,y,z), E(z,u,w).\nAns(x,y,z) :- P(x,y,z)."
        )
        with pytest.raises(DatalogError):
            validate_fragment(rec, "TripleDatalog")
        validate_fragment(rec, "ReachTripleDatalog")
        with pytest.raises(DatalogError):
            validate_fragment(rec, "NoSuchFragment")


class TestProposition2RoundTrip:
    """TriAL → nonrecursive TripleDatalog¬ → TriAL, semantics preserved."""

    @given(expressions(max_depth=3, allow_star=False), stores(max_triples=8))
    @settings(max_examples=50, deadline=None)
    def test_to_datalog_preserves_semantics(self, expr, store):
        program = trial_to_datalog(expr)
        assert is_triple_datalog(program)
        assert run_program(program, store) == evaluate(expr, store)

    @given(expressions(max_depth=2, allow_star=False), stores(max_triples=8))
    @settings(max_examples=40, deadline=None)
    def test_back_translation_preserves_semantics(self, expr, store):
        program = trial_to_datalog(expr)
        back = datalog_to_trial(program)
        assert evaluate(back, store) == evaluate(expr, store)


class TestTheorem2RoundTrip:
    """TriAL* ↔ ReachTripleDatalog¬ (stars become the two-rule shape)."""

    @given(expressions(max_depth=3, allow_star=True), stores(max_triples=8))
    @settings(max_examples=40, deadline=None)
    def test_recursive_round_trip(self, expr, store):
        program = trial_to_datalog(expr)
        assert run_program(program, store) == evaluate(expr, store)
        back = datalog_to_trial(program)
        assert evaluate(back, store) == evaluate(expr, store)

    def test_query_q_program_is_reach_fragment(self):
        program = trial_to_datalog(query_q())
        assert is_reach_triple_datalog(program)
        assert run_program(program, figure1()) == evaluate(query_q(), figure1())

    def test_reach_forward_program(self):
        program = trial_to_datalog(reach_forward())
        assert is_reach_triple_datalog(program)

    def test_example2_program_is_nonrecursive(self):
        program = trial_to_datalog(example2_expr())
        assert is_triple_datalog(program)


class TestTranslationErrors:
    def test_universe_not_translatable(self):
        from repro.core import Universe

        with pytest.raises(TranslationError):
            trial_to_datalog(Universe())

    def test_low_arity_not_translatable_back(self):
        p = parse_program("Ans(x, x, x) :- P(x).\nP(x) :- E(x, y, z).")
        with pytest.raises(TranslationError):
            datalog_to_trial(p)

    def test_mutual_recursion_not_translatable(self):
        p = parse_program(
            """
            P(x,y,z) :- E(x,y,z).
            P(x,y,z) :- Q(x,y,z).
            Q(x,y,w) :- P(x,y,z), E(z,u,w).
            Ans(x,y,z) :- P(x,y,z).
            """
        )
        with pytest.raises(TranslationError):
            datalog_to_trial(p)

    def test_hand_written_reach_program_translates(self):
        p = parse_program(
            """
            Sub(x, y, z) :- E(x, y, z).
            Reach(x, y, z) :- Sub(x, y, z).
            Reach(x, y, w) :- Reach(x, y, z), Sub(z, u, w), ~(y, u).
            Ans(x, y, z) :- Reach(x, y, z), x != z.
            """
        )
        expr = datalog_to_trial(p)
        store = figure1()
        assert evaluate(expr, store) == run_program(p, store)
