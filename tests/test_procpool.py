"""Cross-process shard execution: worker pool, shm stores, failures.

The process executor runs the same compiled plans as the thread path,
so correctness is tested as agreement: every query family is evaluated
through a real worker pool (dispatch threshold forced to zero) and
compared against the thread executor.  The rest of the file covers
what only the process path can get wrong — worker death mid-query,
shared-memory segment lifecycle, and the fall-back seams.

Worker pools are process-wide singletons (see ``procpool.get_pool``),
so the spawn cost is paid once per test run, not per test.
"""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.core.engines import procpool
from repro.core.engines.sharded import ShardedEngine
from repro.core.explain import explain_physical
from repro.core.parser import parse
from repro.db import Database
from repro.errors import ReproError, ShardWorkerError
from repro.triplestore.shm import live_segment_names, publish_sharded_store
from repro.workloads.generators import random_store

#: One store for the agreement tests: two relations, η collisions.
STORE = random_store(60, 4000, n_relations=2, data_values=range(6), seed=3)

#: Plan shapes worth running through real workers: co-partitioned and
#: repartitioned joins, an η join (ρ-code exchange), set operations,
#: selections, and both star fixpoints (coordinator-driven rounds).
QUERIES = [
    "E0",
    "select[2='o3'](E0) | select[rho(1)=rho(3)](E0)",
    "join[1,2,3'; 1=1'](E0, E1)",
    "join[1,3',3; 2=1'](E0, E1)",
    "join[1,2,3'; 3=1' & rho(2)=rho(2')](E0, E1)",
    "(E0 | E1) - select[1=3](E0)",
    "(E0 & E0) | (E1 & E1)",
    "star[1,2,3'; 3=1'](E0)",
    "star[1,2,2'; 3=1' & 1!=3'](E0)",
]


def _engines():
    thread = ShardedEngine(shards=4, executor="thread")
    process = ShardedEngine(shards=4, executor="process", workers=2, dispatch_min=0)
    return thread, process


def _pool_or_skip():
    pool = procpool.get_pool(2)
    if pool is None:  # pragma: no cover — spawn-hostile sandboxes
        pytest.skip("cannot spawn worker processes here")
    return pool


@pytest.mark.parametrize("query", QUERIES)
def test_process_executor_agrees_with_thread(query):
    thread, process = _engines()
    expr = parse(query)
    _pool_or_skip()
    assert process.evaluate(expr, STORE) == thread.evaluate(expr, STORE)


def test_process_executor_raises_app_errors():
    """Deterministic application errors surface as themselves, not as
    worker failures — no restart, no retry."""
    _, process = _engines()
    from repro.errors import UnknownRelationError

    with pytest.raises(UnknownRelationError):
        process.evaluate(parse("NOPE"), STORE)


def test_worker_killed_once_is_restarted_and_retried():
    """A worker dying mid-query (at dispatch or inside a collective) is
    restarted and the query replayed to the correct result."""
    thread, _ = _engines()
    pool = _pool_or_skip()
    expr = parse("join[1,3',3; 2=1'](E0, E1)")
    expected = thread.evaluate(expr, STORE)
    plan = thread.compile(expr, STORE)
    ss = STORE.sharded(4, 0)
    handle = publish_sharded_store(ss)
    for when in ("start", "collective"):
        marker = tempfile.mktemp(prefix="repro-die-once-")
        keys = pool.run_query(
            handle.name,
            plan,
            fault={"rank": 1, "when": when, "marker": marker},
        )
        assert ss.cs.decode_triples(keys) == expected, when
        os.unlink(marker)


def test_worker_killed_always_raises_cleanly():
    """Persistent worker death exhausts the retry and raises
    ShardWorkerError — never a hang — and leaves the pool usable."""
    thread, _ = _engines()
    pool = _pool_or_skip()
    expr = parse("join[1,2,3'; 1=1'](E0, E1)")
    plan = thread.compile(expr, STORE)
    ss = STORE.sharded(4, 0)
    handle = publish_sharded_store(ss)
    with pytest.raises(ShardWorkerError, match="after 2 attempt"):
        pool.run_query(handle.name, plan, fault={"rank": 0, "when": "start"})
    keys = pool.run_query(handle.name, plan)
    assert ss.cs.decode_triples(keys) == thread.evaluate(expr, STORE)


def test_query_deadline_raises_without_retry():
    """A deadline overrun aborts and raises immediately: replaying a
    hang would hang again."""
    thread, _ = _engines()
    pool = _pool_or_skip()
    expr = parse("star[1,2,3'; 3=1'](E0)")
    plan = thread.compile(expr, STORE)
    ss = STORE.sharded(4, 0)
    handle = publish_sharded_store(ss)
    with pytest.raises(ShardWorkerError, match="deadline"):
        pool.run_query(handle.name, plan, timeout=0.0)
    keys = pool.run_query(handle.name, plan)
    assert ss.cs.decode_triples(keys) == thread.evaluate(expr, STORE)


def _repro_dev_shm_entries():
    try:
        names = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover — platforms without /dev/shm
        return set()
    return {n for n in names if n.startswith("repro-")}


def test_shm_segments_released_in_build_destroy_loop():
    """Building and closing stores in a loop must not leak segments —
    neither in the in-process registry nor on /dev/shm itself."""
    before = _repro_dev_shm_entries()
    live_before = set(live_segment_names())
    for i in range(5):
        db = Database(
            random_store(30, 200, seed=i),
            backend="sharded",
            shards=4,
            executor="process",
        )
        ss = db.store.sharded(4, 0)
        publish_sharded_store(ss)
        assert ss._shm is not None
        db.close()
        assert ss._shm is None
    assert set(live_segment_names()) <= live_before
    assert _repro_dev_shm_entries() <= before


def test_database_close_is_idempotent_and_context_managed():
    live_before = set(live_segment_names())
    with Database(
        random_store(10, 40, seed=9), backend="sharded", shards=2, executor="process"
    ) as db:
        handle = publish_sharded_store(db.store.sharded(2, 0))
        assert handle.name in live_segment_names()
    db.close()  # second close is a no-op
    assert set(live_segment_names()) <= live_before


def test_small_store_falls_back_to_thread_path():
    """Below the dispatch threshold the process executor must not pay
    worker round-trips — nothing gets published to shared memory."""
    engine = ShardedEngine(shards=4, executor="process", workers=2)
    small = random_store(20, 100, seed=5)
    assert len(small) < engine.dispatch_min
    thread = ShardedEngine(shards=4, executor="thread")
    expr = parse("join[1,2,3'; 3=1'](E, E)")
    assert engine.evaluate(expr, small) == thread.evaluate(expr, small)
    assert small.sharded(4, 0)._shm is None


def test_database_executor_kwargs_validation():
    tiny = random_store(5, 10, seed=1)
    db = Database(tiny, executor="process")
    assert db.engine.backend == "sharded"
    assert db.engine.executor == "process"
    with pytest.raises(ReproError, match="only applies to the sharded backend"):
        Database(tiny, backend="columnar", executor="process")
    with pytest.raises(ReproError, match="only applies to the sharded backend"):
        Database(tiny, backend="set", workers=2)
    with pytest.raises(ReproError, match="drop one of the two"):
        Database(
            tiny,
            ShardedEngine(shards=2, executor="thread"),
            executor="process",
        )


def test_executor_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "process")
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "3")
    monkeypatch.setenv("REPRO_SHARD_DISPATCH_MIN", "7")
    engine = ShardedEngine(shards=4)
    assert engine.executor == "process"
    assert engine.worker_count() == 3
    assert engine.dispatch_min == 7

    monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "telepathy")
    with pytest.raises(ReproError, match="REPRO_SHARD_EXECUTOR"):
        ShardedEngine(shards=4)
    monkeypatch.delenv("REPRO_SHARD_EXECUTOR")
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "zero")
    with pytest.raises(ReproError, match="REPRO_SHARD_WORKERS"):
        ShardedEngine(shards=4).worker_count()
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "3")
    monkeypatch.setenv("REPRO_SHARD_DISPATCH_MIN", "many")
    with pytest.raises(ReproError, match="REPRO_SHARD_DISPATCH_MIN"):
        ShardedEngine(shards=4)


def test_explain_physical_names_the_executor():
    expr = parse("join[1,2,3'; 3=1'](E0, E1)")
    thread, process = _engines()
    rendered = explain_physical(expr, STORE, engine=thread)
    assert "executor   : thread" in rendered
    rendered = explain_physical(expr, STORE, engine=process)
    assert "executor   : process" in rendered
    assert "shm all-to-all exchange" in rendered
