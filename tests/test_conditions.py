"""Tests for positions and θ/η conditions."""

import pytest

from repro.errors import AlgebraError, ParseError
from repro.core.conditions import (
    Cond,
    as_conditions,
    equalities_only,
    eta,
    parse_conditions,
    theta,
)
from repro.core.positions import Const, Pos, format_out_spec, parse_out_spec


class TestPositions:
    def test_paper_names(self):
        assert Pos(0).paper_name == "1"
        assert Pos(5).paper_name == "3'"

    def test_from_paper(self):
        assert Pos.from_paper("2'").index == 4
        with pytest.raises(AlgebraError):
            Pos.from_paper("4")

    def test_sides(self):
        assert Pos(1).is_left and not Pos(1).is_right
        assert Pos(4).is_right
        assert Pos(4).local_index == 1

    def test_bounds(self):
        with pytest.raises(AlgebraError):
            Pos(6)

    def test_out_spec_roundtrip(self):
        assert parse_out_spec("1,3',3") == (0, 5, 2)
        assert format_out_spec((0, 5, 2)) == "1,3',3"
        with pytest.raises(AlgebraError):
            parse_out_spec("1,2")


class TestCondEvaluation:
    RHO = {"a": 1, "b": 1, "c": 2}.get

    def test_object_equality(self):
        cond = Cond(Pos(0), Pos(3))
        assert cond.evaluate(("a", "x", "y"), ("a", "z", "w"), self.RHO)
        assert not cond.evaluate(("a", "x", "y"), ("b", "z", "w"), self.RHO)

    def test_object_inequality(self):
        cond = Cond(Pos(0), Pos(2), "!=")
        assert cond.evaluate(("a", "x", "b"), None, self.RHO)
        assert not cond.evaluate(("a", "x", "a"), None, self.RHO)

    def test_object_constant(self):
        cond = Cond(Pos(1), Const("part_of"))
        assert cond.evaluate(("a", "part_of", "b"), None, self.RHO)

    def test_data_equality_uses_rho(self):
        cond = Cond(Pos(0), Pos(3), "=", on_data=True)
        assert cond.evaluate(("a", "x", "y"), ("b", "z", "w"), self.RHO)
        assert not cond.evaluate(("a", "x", "y"), ("c", "z", "w"), self.RHO)

    def test_data_constant(self):
        cond = Cond(Pos(0), Const(2), "=", on_data=True)
        assert cond.evaluate(("c", "x", "y"), None, self.RHO)

    def test_missing_right_operand(self):
        cond = Cond(Pos(0), Pos(3))
        with pytest.raises(AlgebraError):
            cond.evaluate(("a", "b", "c"), None, self.RHO)

    def test_bad_operator(self):
        with pytest.raises(AlgebraError):
            Cond(Pos(0), Pos(1), "<")

    def test_swap_sides(self):
        cond = Cond(Pos(0), Pos(4), "!=", on_data=True).swap_sides()
        assert cond.left == Pos(3)
        assert cond.right == Pos(1)

    def test_shift_right(self):
        cond = Cond(Pos(0), Const("a")).shift_right()
        assert cond.left == Pos(3)
        assert cond.right == Const("a")


class TestConditionParsing:
    def test_theta_equality(self):
        (cond,) = parse_conditions("2=1'")
        assert cond == Cond(Pos(1), Pos(3))

    def test_eta_and_mixed_list(self):
        conds = parse_conditions("1!=3' & rho(2)=rho(2')")
        assert theta(conds) == (Cond(Pos(0), Pos(5), "!="),)
        assert eta(conds) == (Cond(Pos(1), Pos(4), "=", True),)

    def test_object_constant(self):
        (cond,) = parse_conditions("2='part_of'")
        assert cond == Cond(Pos(1), Const("part_of"))

    def test_numeric_data_constant(self):
        (cond,) = parse_conditions("rho(3)=7")
        assert cond == Cond(Pos(2), Const(7), "=", True)

    def test_empty(self):
        assert parse_conditions("") == ()
        assert as_conditions(None) == ()

    def test_mixed_rho_and_bare_rejected(self):
        with pytest.raises(ParseError):
            parse_conditions("rho(1)=2'")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_conditions("1 ~ 2")

    def test_comma_separator_allowed(self):
        assert len(parse_conditions("1=2, 2=3")) == 2

    def test_equalities_only(self):
        assert equalities_only(parse_conditions("1=2 & rho(1)=rho(2)"))
        assert not equalities_only(parse_conditions("1!=2"))

    def test_repr_reparses(self):
        conds = parse_conditions("2=1' & rho(3)!=rho(3') & 1='x'")
        again = parse_conditions(" & ".join(repr(c) for c in conds))
        assert again == conds
