"""E13: GXPath(∼)/NRE/RPQ → TriAL* equivalence (Thm 7, Cor 2, Cor 4)."""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core import evaluate, project13
from repro.graphdb import (
    Axis,
    Concat,
    DataNodeTest,
    DataPathTest,
    Eps,
    HasPath,
    NodeAnd,
    NodeNot,
    NodeOr,
    PathComplement,
    PathUnion,
    StarPath,
    Test,
    Top,
    evaluate_gxpath,
    evaluate_gxpath_nodes,
    evaluate_nre,
    evaluate_rpq,
    parse_nre,
)
from repro.translations import (
    gxpath_node_to_trial,
    gxpath_to_trial,
    nre_to_trial,
    rpq_to_trial,
)
from repro.workloads.generators import random_graph

LABELS = ("a", "b")


@st.composite
def path_exprs(draw, depth: int = 3):
    if depth <= 0:
        kind = draw(st.sampled_from(("axis", "axis", "eps")))
    else:
        kind = draw(
            st.sampled_from(
                ("axis", "eps", "concat", "union", "star", "compl", "test", "data")
            )
        )
    if kind == "axis":
        return Axis(draw(st.sampled_from(LABELS)), draw(st.booleans()))
    if kind == "eps":
        return Eps()
    if kind == "concat":
        return Concat(draw(path_exprs(depth=depth - 1)), draw(path_exprs(depth=depth - 1)))
    if kind == "union":
        return PathUnion(draw(path_exprs(depth=depth - 1)), draw(path_exprs(depth=depth - 1)))
    if kind == "star":
        return StarPath(draw(path_exprs(depth=depth - 1)))
    if kind == "compl":
        return PathComplement(draw(path_exprs(depth=depth - 1)))
    if kind == "test":
        return Test(draw(node_exprs(depth=depth - 1)))
    return DataPathTest(draw(path_exprs(depth=depth - 1)), draw(st.booleans()))


@st.composite
def node_exprs(draw, depth: int = 2):
    if depth <= 0:
        return Top()
    kind = draw(st.sampled_from(("top", "not", "and", "or", "haspath", "datatest")))
    if kind == "top":
        return Top()
    if kind == "not":
        return NodeNot(draw(node_exprs(depth=depth - 1)))
    if kind == "and":
        return NodeAnd(draw(node_exprs(depth=depth - 1)), draw(node_exprs(depth=depth - 1)))
    if kind == "or":
        return NodeOr(draw(node_exprs(depth=depth - 1)), draw(node_exprs(depth=depth - 1)))
    if kind == "haspath":
        return HasPath(draw(path_exprs(depth=depth - 1)))
    return DataNodeTest(
        draw(path_exprs(depth=depth - 1)),
        draw(path_exprs(depth=depth - 1)),
        draw(st.booleans()),
    )


@given(path_exprs(), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=80, deadline=None)
def test_gxpath_path_translation(expr, seed):
    """Theorem 7 + Corollary 4: π₁,₃(e_α(T_G)) = α(G)."""
    g = random_graph(5, 8, labels=LABELS, seed=seed)
    want = evaluate_gxpath(g, expr)
    got = project13(evaluate(gxpath_to_trial(expr), g.to_triplestore()))
    assert want == got


@given(node_exprs(), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_gxpath_node_translation(expr, seed):
    g = random_graph(5, 8, labels=LABELS, seed=seed)
    want = evaluate_gxpath_nodes(g, expr)
    got = {s for s, _, _ in evaluate(gxpath_node_to_trial(expr), g.to_triplestore())}
    assert want == got


@pytest.mark.parametrize(
    "text",
    ["a", "a.b", "a.[b].a", "(a+b)*", "a-.b*", "a.[b-.a]*"],
)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_nre_translation(text, seed):
    """Corollary 2 for NREs."""
    g = random_graph(6, 10, labels=LABELS, seed=seed)
    nre = parse_nre(text)
    want = evaluate_nre(g, nre)
    got = project13(evaluate(nre_to_trial(nre), g.to_triplestore()))
    assert want == got


@pytest.mark.parametrize("regex", ["a", "a.b*", "(a+b)*", "a-.(b+a)"])
@pytest.mark.parametrize("seed", [0, 3])
def test_rpq_translation(regex, seed):
    """Corollary 2 for (2)RPQs."""
    g = random_graph(6, 10, labels=LABELS, seed=seed)
    want = evaluate_rpq(g, regex)
    got = project13(evaluate(rpq_to_trial(regex), g.to_triplestore()))
    assert want == got
