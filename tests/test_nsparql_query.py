"""The conjunctive nSPARQL layer and its Theorem 1 invariance."""

import pytest

from repro.errors import GraphError
from repro.graphdb import parse_nre
from repro.rdf import RDFGraph, figure1, proposition1_d1, proposition1_d2
from repro.rdf.nsparql_query import Filter, NSparqlQuery, Pattern, QConst, QVar

FIG1 = RDFGraph(figure1().relation("E"))


class TestEvaluation:
    def test_single_pattern(self):
        q = NSparqlQuery(
            [Pattern(QVar("x"), parse_nre("next"), QVar("y"))],
            select=("x", "y"),
        )
        got = q.evaluate(FIG1)
        assert ("Edinburgh", "London") in got

    def test_constant_subject(self):
        q = NSparqlQuery(
            [Pattern(QConst("Edinburgh"), parse_nre("next*"), QVar("y"))],
            select=("y",),
        )
        got = q.evaluate(FIG1)
        assert ("Brussels",) in got

    def test_join_on_shared_variable(self):
        # x --edge--> op, op --next--> company.
        q = NSparqlQuery(
            [
                Pattern(QVar("x"), parse_nre("edge"), QVar("op")),
                Pattern(QVar("op"), parse_nre("next"), QVar("c")),
            ],
            select=("x", "c"),
        )
        got = q.evaluate(FIG1)
        assert ("Edinburgh", "EastCoast") in got

    def test_filter(self):
        q = NSparqlQuery(
            [Pattern(QVar("x"), parse_nre("next*"), QVar("y"))],
            select=("x", "y"),
            filters=[Filter("x", "!=", "y")],
        )
        got = q.evaluate(FIG1)
        assert all(x != y for x, y in got)

    def test_nested_pattern(self):
        q = NSparqlQuery(
            [Pattern(QVar("x"), parse_nre("next.[edge.next]"), QVar("y"))],
            select=("x", "y"),
        )
        assert q.evaluate(FIG1)

    def test_unsatisfiable(self):
        q = NSparqlQuery(
            [
                Pattern(QVar("x"), parse_nre("next"), QVar("y")),
                Pattern(QVar("y"), parse_nre("next"), QVar("x")),
            ],
            select=("x",),
        )
        assert q.evaluate(FIG1) == frozenset()


class TestValidation:
    def test_empty_patterns(self):
        with pytest.raises(GraphError):
            NSparqlQuery([], select=())

    def test_unknown_select_var(self):
        with pytest.raises(GraphError):
            NSparqlQuery(
                [Pattern(QVar("x"), parse_nre("next"), QVar("y"))],
                select=("zz",),
            )

    def test_filter_vars_checked(self):
        with pytest.raises(GraphError):
            NSparqlQuery(
                [Pattern(QVar("x"), parse_nre("next"), QVar("y"))],
                select=("x",),
                filters=[Filter("x", "=", "w")],
            )

    def test_bad_filter_op(self):
        with pytest.raises(GraphError):
            Filter("x", "<", "y")


class TestTheorem1Invariance:
    """Whole nSPARQL *queries* — not just NREs — cannot tell D₁ from D₂."""

    QUERIES = [
        NSparqlQuery(
            [Pattern(QVar("x"), parse_nre("next*"), QVar("y"))],
            select=("x", "y"),
        ),
        NSparqlQuery(
            [
                Pattern(QVar("x"), parse_nre("edge"), QVar("op")),
                Pattern(QVar("op"), parse_nre("next*"), QVar("c")),
                Pattern(QVar("x"), parse_nre("next"), QVar("y")),
            ],
            select=("x", "c", "y"),
        ),
        # An attempted encoding of query Q: travel steps whose operators
        # reach a common company — the pattern *looks* right but cannot
        # chain same-company segments, and (crucially) answers the same
        # on both documents.
        NSparqlQuery(
            [
                Pattern(QVar("x"), parse_nre("next"), QVar("y")),
                Pattern(QVar("x"), parse_nre("edge.next*"), QVar("c")),
                Pattern(QVar("y"), parse_nre("next"), QVar("z")),
                Pattern(QVar("y"), parse_nre("edge.next*"), QVar("c")),
            ],
            select=("x", "z"),
            filters=[Filter("x", "!=", "z")],
        ),
    ]

    def test_all_queries_agree_on_d1_d2(self):
        d1 = RDFGraph(proposition1_d1().relation("E"))
        d2 = RDFGraph(proposition1_d2().relation("E"))
        for query in self.QUERIES:
            assert query.evaluate(d1) == query.evaluate(d2)
