"""Unit tests for the triplestore model (Definition 1)."""

import pytest

from repro.errors import TriplestoreError, UnknownRelationError
from repro.triplestore import DEFAULT_RELATION, Triplestore


class TestConstruction:
    def test_iterable_goes_to_default_relation(self):
        t = Triplestore([("a", "p", "b")])
        assert t.relation(DEFAULT_RELATION) == {("a", "p", "b")}

    def test_mapping_constructor(self):
        t = Triplestore({"E": [("a", "p", "b")], "F": []})
        assert t.relation_names == ("E", "F")
        assert t.relation("F") == frozenset()

    def test_objects_collect_all_positions(self):
        t = Triplestore([("a", "p", "b")])
        assert t.objects == {"a", "p", "b"}

    def test_extra_objects_are_kept(self):
        t = Triplestore([("a", "p", "b")], extra_objects=["z"])
        assert "z" in t.objects

    def test_empty_store(self):
        t = Triplestore.empty()
        assert len(t) == 0
        assert t.objects == frozenset()

    def test_non_triples_rejected(self):
        with pytest.raises(TriplestoreError):
            Triplestore([("a", "b")])

    def test_kwargs_constructor(self):
        t = Triplestore.from_pairs_of_relations(E=[("a", "a", "a")], G=[])
        assert t.relation_names == ("E", "G")


class TestAccess:
    def test_unknown_relation_raises_with_hint(self):
        t = Triplestore({"E": []})
        with pytest.raises(UnknownRelationError) as exc:
            t.relation("Nope")
        assert "E" in str(exc.value)

    def test_rho_defaults_to_none(self):
        t = Triplestore([("a", "p", "b")], rho={"a": 7})
        assert t.rho("a") == 7
        assert t.rho("b") is None

    def test_rho_accepts_tuples(self):
        t = Triplestore([("a", "p", "b")], rho={"a": ("x", 1, None)})
        assert t.rho("a") == ("x", 1, None)

    def test_len_counts_all_relations(self):
        t = Triplestore({"E": [("a", "a", "a")], "F": [("b", "b", "b")]})
        assert len(t) == 2
        assert t.size == 2

    def test_contains_and_iter(self):
        t = Triplestore([("a", "p", "b")])
        assert ("a", "p", "b") in t
        assert ("b", "p", "a") not in t
        assert list(t) == [("a", "p", "b")]

    def test_all_triples_unions_relations(self):
        t = Triplestore({"E": [("a", "a", "a")], "F": [("b", "b", "b")]})
        assert t.all_triples() == {("a", "a", "a"), ("b", "b", "b")}

    def test_n_objects(self):
        t = Triplestore([("a", "p", "b")])
        assert t.n_objects == 3


class TestDerivedStores:
    def test_with_relation_installs_result(self):
        t = Triplestore([("a", "p", "b")])
        t2 = t.with_relation("Out", [("b", "p", "a")])
        assert t2.relation("Out") == {("b", "p", "a")}
        assert t.relation_names == ("E",)  # original untouched

    def test_with_relation_keeps_old_objects(self):
        t = Triplestore([("a", "p", "b")])
        t2 = t.with_relation("E", [])
        assert "a" in t2.objects

    def test_with_rho(self):
        t = Triplestore([("a", "p", "b")])
        assert t.with_rho({"a": 1}).rho("a") == 1

    def test_restrict(self):
        t = Triplestore({"E": [("a", "a", "a")], "F": [("b", "b", "b")]})
        r = t.restrict(["E"])
        assert r.relation_names == ("E",)
        assert "b" in r.objects  # objects retained

    def test_equality_and_hash(self):
        t1 = Triplestore([("a", "p", "b")], rho={"a": 1})
        t2 = Triplestore([("a", "p", "b")], rho={"a": 1})
        assert t1 == t2
        assert hash(t1) == hash(t2)
        assert t1 != t1.with_rho({"a": 2})


class TestIndexes:
    def test_index_by_subject(self):
        t = Triplestore([("a", "p", "b"), ("a", "q", "c"), ("b", "p", "a")])
        idx = t.index("E", (0,))
        assert sorted(idx[("a",)]) == [("a", "p", "b"), ("a", "q", "c")]

    def test_index_by_pair(self):
        t = Triplestore([("a", "p", "b"), ("a", "p", "c")])
        idx = t.index("E", (0, 1))
        assert len(idx[("a", "p")]) == 2

    def test_index_cached(self):
        t = Triplestore([("a", "p", "b")])
        assert t.index("E", (0,)) is t.index("E", (0,))
