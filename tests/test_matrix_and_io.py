"""Tests for the §5 array representation and the text I/O format."""

import pytest

from repro.errors import ParseError, TriplestoreError
from repro.triplestore import MatrixStore, Triplestore, dumps, loads


class TestMatrixStore:
    def test_encode_decode_roundtrip(self):
        t = Triplestore([("a", "p", "b"), ("b", "p", "a")])
        ms = MatrixStore(t)
        mat = ms.matrix("E")
        assert ms.triples_of(mat) == t.relation("E")

    def test_matrix_is_cubic(self):
        t = Triplestore([("a", "p", "b")])
        ms = MatrixStore(t)
        assert ms.matrix("E").shape == (3, 3, 3)

    def test_dv_array_follows_sorted_objects(self):
        t = Triplestore([("a", "p", "b")], rho={"a": 5})
        ms = MatrixStore(t)
        assert ms.dv[ms.index_of("a")] == 5
        assert ms.dv[ms.index_of("b")] is None

    def test_encode_arbitrary_set(self):
        t = Triplestore([("a", "p", "b")])
        ms = MatrixStore(t)
        triples = frozenset({("b", "a", "p")})
        assert ms.triples_of(ms.encode(triples)) == triples

    def test_universal_covers_active_domain(self):
        t = Triplestore([("a", "p", "b")])
        ms = MatrixStore(t)
        assert int(ms.universal().sum()) == 27

    def test_size_guard(self):
        t = Triplestore([(f"o{i}", "p", "q") for i in range(30)])
        with pytest.raises(TriplestoreError):
            MatrixStore(t, max_objects=10)

    def test_unknown_object(self):
        ms = MatrixStore(Triplestore([("a", "p", "b")]))
        with pytest.raises(TriplestoreError):
            ms.index_of("zz")


class TestTextIO:
    def test_roundtrip_simple(self):
        t = Triplestore(
            {"E": [("a", "p", "b")], "part_of": [("p", "x", "q")]},
            rho={"a": 3},
        )
        assert loads(dumps(t)) == t

    def test_roundtrip_tuple_values(self):
        t = Triplestore(
            [("o1", "c1", "o2")],
            rho={"o1": ("Mario", "m@nes.com", 23, None, None)},
        )
        assert loads(dumps(t)) == t

    def test_quoted_strings_with_spaces(self):
        t = Triplestore([("St. Andrews", "Bus Op 1", "Edinburgh")])
        out = dumps(t)
        assert '"St. Andrews"' in out
        assert loads(out) == t

    def test_comments_and_blank_lines(self):
        text = """
        # transport data
        E a p b   # inline comment
        """
        assert loads(text).relation("E") == {("a", "p", "b")}

    def test_float_and_null_values(self):
        t = loads('@rho a 1.5\n@rho b null\nE a p b\n')
        assert t.rho("a") == 1.5
        assert t.rho("b") is None

    def test_bad_line_raises(self):
        with pytest.raises(ParseError):
            loads("E a b")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            loads('E "a p b')
