"""Tests for the static query analyser."""

from repro.core import (
    R,
    Universe,
    complement,
    join,
    query_q,
    reach_forward,
    select,
    star,
)
from repro.core.explain import explain
from repro.core.semijoin import semijoin


class TestFragments:
    def test_query_q_fragment(self):
        """Q's inner star (E ✶^{1,3',3}_{2=1'})* is *not* one of the two
        reach shapes, so Q sits in the equality-only TriAL*= regime; only
        its outer star is reach-shaped."""
        report = explain(query_q())
        assert "TriAL*=" in report.fragment
        assert report.recommended_engine == "FastEngine"
        assert report.n_stars == 2 and report.n_reach_stars == 1

    def test_pure_reach_query_is_reach_fragment(self):
        nested = star(
            star(R("E"), "1,2,3'", "3=1'"), "1,2,3'", "3=1' & 2=2'"
        )
        report = explain(nested)
        assert report.fragment == "reachTA="
        assert "Proposition 5" in report.guarantee

    def test_plain_join_is_trial_eq(self):
        report = explain(join(R("E"), R("E"), "1,2,3'", "3=1'"))
        assert report.fragment == "TriAL="
        assert "Proposition 4" in report.guarantee

    def test_semijoin_fragment_detected(self):
        report = explain(semijoin(R("E"), R("F"), "3=1'"))
        assert report.fragment.startswith("semijoin")

    def test_inequalities_leave_the_equality_fragments(self):
        report = explain(select(R("E"), "1!=2"))
        assert report.fragment == "TriAL"
        assert "Theorem 3" in report.guarantee
        assert not report.equality_only

    def test_general_star_is_trial_star(self):
        report = explain(star(R("E"), "1,3',3", "2=1' & 1!=2"))
        assert report.fragment == "TriAL*"
        assert report.recursive

    def test_equality_only_star_gets_intermediate_bound(self):
        report = explain(star(R("E"), "1,3',3", "2=1'"))
        assert "TriAL*=" in report.fragment
        assert "|T|²" in report.guarantee

    def test_reach_star_counted(self):
        report = explain(reach_forward())
        assert report.n_reach_stars == 1


class TestFeatures:
    def test_universe_and_complement_flags(self):
        report = explain(complement(R("E")))
        assert report.uses_universe and report.uses_complement
        assert "cubic" in report.summary()

    def test_size_and_relations(self):
        report = explain(join(R("E"), R("F"), "1,2,3"))
        assert report.size == 3
        assert report.relations == ("E", "F")

    def test_summary_is_multiline(self):
        text = explain(query_q()).summary()
        assert "fragment   : TriAL*=" in text
        assert "2 star(s)" in text

    def test_plain_universe(self):
        report = explain(Universe())
        assert report.relations == ()
        assert report.uses_universe
