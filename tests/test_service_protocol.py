"""Protocol fuzzing for the query service: malformed input never crashes.

The wire contract under test: *whatever arrives, the server answers
every HTTP request with a structured JSON error (4xx) or a result
(200) — never a 5xx, never a hang, never a dead server — and closes
WebSocket violations with the right close code.*

Fuzzing is seeded and replayable in the ``diffcheck.py`` style: each
case draws from ``random.Random(f"{seed}:{index}")`` so a single index
replays without the sweep; failures are greedily shrunk to a minimal
payload and reported as a paste-able repro snippet.  Knobs::

    REPRO_FUZZ_SEED=1337 REPRO_FUZZ_CASES=400 \
        PYTHONPATH=src python -m pytest tests/test_service_protocol.py
"""

from __future__ import annotations

import json
import os
import random
import socket
import string
from http.client import HTTPConnection

import pytest

from repro.db import Database
from repro.service import QueryServer, ServiceClient, ServiceConfig
from repro.service import ws as wsproto
from repro.triplestore.model import Triplestore

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "1337"))
FUZZ_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "150"))

#: Small body cap so oversize payloads are cheap to construct.
MAX_BODY = 4096

STORE = Triplestore(
    {
        "E": [("a", "p", "b"), ("b", "p", "c"), ("c", "q", "a")],
        "F": [("b", "r", "a")],
    },
    rho={"a": 0, "b": 1, "c": 0, "p": 0, "q": 1, "r": 1},
)

ROUTES = ("/v1/query", "/v1/execute", "/v1/prepare", "/v1/explain")


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        port=0, max_inflight=4, max_body_bytes=MAX_BODY, query_timeout=10.0
    )
    with QueryServer(Database(STORE), config) as srv:
        yield srv


# --------------------------------------------------------------------- #
# Raw HTTP plumbing (one connection per request: 413 closes the socket)
# --------------------------------------------------------------------- #


def _post_raw(server, path: str, body: bytes, headers=None):
    """POST raw bytes; returns (status, decoded-or-None)."""
    conn = HTTPConnection(*server.address, timeout=15.0)
    try:
        hdrs = {"Content-Type": "application/json"}
        hdrs.update(headers or {})
        conn.request("POST", path, body=body, headers=hdrs)
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    try:
        return response.status, json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return response.status, None


def _violation(server, path: str, payload) -> str | None:
    """The invariant: a structured 2xx/4xx answer, or what went wrong."""
    try:
        status, decoded = _post_raw(
            server, path, json.dumps(payload).encode()
        )
    except (OSError, socket.timeout) as exc:
        return f"transport failure: {exc!r}"
    if status >= 500:
        return f"server error {status}: {decoded}"
    if status >= 400:
        if not isinstance(decoded, dict) or "error" not in decoded:
            return f"unstructured {status} body: {decoded!r}"
        error = decoded["error"]
        if not isinstance(error, dict) or "type" not in error or (
            "message" not in error
        ):
            return f"malformed error envelope: {decoded!r}"
    elif not isinstance(decoded, dict):
        return f"non-object 200 body: {decoded!r}"
    return None


# --------------------------------------------------------------------- #
# Payload generation and shrinking
# --------------------------------------------------------------------- #

_JUNK_CHARS = "join[]()';=$&|-*,.!# E013star select rho\\\"\n\t«ψ"


def _random_scalar(rng: random.Random):
    return rng.choice(
        [
            rng.randint(-(10**12), 10**12),
            rng.random() * 1e6,
            True,
            False,
            None,
            "".join(
                rng.choice(_JUNK_CHARS)
                for _ in range(rng.randint(0, 40))
            ),
        ]
    )


def _random_value(rng: random.Random, depth: int = 2):
    if depth <= 0 or rng.random() < 0.6:
        return _random_scalar(rng)
    if rng.random() < 0.5:
        return [_random_value(rng, depth - 1) for _ in range(rng.randint(0, 4))]
    return {
        "".join(rng.choice(string.ascii_lowercase) for _ in range(4)): (
            _random_value(rng, depth - 1)
        )
        for _ in range(rng.randint(0, 4))
    }


def _random_payload(rng: random.Random):
    """A request-shaped payload, mutated — or arbitrary JSON."""
    roll = rng.random()
    if roll < 0.15:
        return _random_value(rng, depth=3)
    payload = {"query": "E", "tenant": "default"}
    for _ in range(rng.randint(1, 4)):
        mutation = rng.randrange(7)
        if mutation == 0:  # junk query text
            payload["query"] = "".join(
                rng.choice(_JUNK_CHARS) for _ in range(rng.randint(0, 60))
            )
        elif mutation == 1:  # unknown language
            payload["lang"] = "".join(
                rng.choice(string.ascii_lowercase)
                for _ in range(rng.randint(0, 10))
            )
        elif mutation == 2:  # bad params (types, unknown $names)
            payload["params"] = rng.choice(
                [
                    _random_value(rng, 1),
                    {"x": [1, 2]},
                    {"": "v"},
                    {"p": None},
                ]
            )
        elif mutation == 3:  # wrong-typed standard field
            payload[
                rng.choice(
                    ["query", "lang", "tenant", "limit", "offset",
                     "page_size", "statement", "id"]
                )
            ] = _random_value(rng, 1)
        elif mutation == 4:  # unknown field
            payload[
                "".join(rng.choice(string.ascii_lowercase) for _ in range(6))
            ] = _random_scalar(rng)
        elif mutation == 5:  # bogus statement / tenant
            payload["statement"] = rng.choice(
                ["stmt-999999", "nope", "", "stmt--1"]
            )
        else:  # oversized field (may cross the body cap → 413)
            payload["query"] = "E" * rng.randint(10, 2 * MAX_BODY)
    return payload


def _shrink(server, path: str, payload, budget: int = 150):
    """Greedy shrink in the diffcheck style: keep the violation, lose
    the payload mass."""
    spent = 0

    def still_fails(candidate) -> bool:
        nonlocal spent
        if spent >= budget:
            return False
        spent += 1
        return _violation(server, path, candidate) is not None

    changed = True
    while changed and spent < budget:
        changed = False
        if isinstance(payload, dict):
            for key in sorted(payload, key=repr):
                smaller = {k: v for k, v in payload.items() if k != key}
                if still_fails(smaller):
                    payload, changed = smaller, True
                    break
            if changed:
                continue
            for key, value in sorted(payload.items(), key=repr):
                for simpler in (None, "", 0, [], {}):
                    if value == simpler:
                        continue
                    candidate = dict(payload)
                    candidate[key] = simpler
                    if still_fails(candidate):
                        payload, changed = candidate, True
                        break
                if changed:
                    break
                if isinstance(value, str) and len(value) > 1:
                    candidate = dict(payload)
                    candidate[key] = value[: len(value) // 2]
                    if still_fails(candidate):
                        payload, changed = candidate, True
        elif isinstance(payload, list) and payload:
            for i in range(len(payload)):
                smaller = payload[:i] + payload[i + 1:]
                if still_fails(smaller):
                    payload, changed = smaller, True
                    break
        elif isinstance(payload, str) and len(payload) > 1:
            candidate = payload[: len(payload) // 2]
            if still_fails(candidate):
                payload, changed = candidate, True
    return payload


def _repro_snippet(server, path: str, payload, problem: str) -> str:
    return "\n".join(
        [
            f"# service protocol-fuzz failure: {problem}",
            "import json",
            "from http.client import HTTPConnection",
            "conn = HTTPConnection(host, port)  # a running repro serve",
            f"conn.request('POST', {path!r}, json.dumps({payload!r}),",
            "             {'Content-Type': 'application/json'})",
            "response = conn.getresponse()",
            "assert response.status < 500",
        ]
    )


def test_fuzz_http_payloads_never_crash(server):
    """Seeded malformed-payload sweep over every POST route."""
    for index in range(FUZZ_CASES):
        rng = random.Random(f"{FUZZ_SEED}:{index}")
        path = ROUTES[index % len(ROUTES)]
        payload = _random_payload(rng)
        problem = _violation(server, path, payload)
        if problem is not None:
            payload = _shrink(server, path, payload)
            problem = _violation(server, path, payload) or problem
            pytest.fail(
                f"case seed={FUZZ_SEED} index={index} violated the "
                f"protocol invariant\n"
                + _repro_snippet(server, path, payload, problem)
            )
    # The server survived the sweep.
    with ServiceClient(server.url) as client:
        assert client.health()["status"] == "ok"
        assert client.query("E")["total"] == len(STORE.relation("E"))


# --------------------------------------------------------------------- #
# Deterministic malformed-HTTP cases
# --------------------------------------------------------------------- #


def test_bad_json_body_is_structured_400(server):
    status, decoded = _post_raw(server, "/v1/query", b"{not json!")
    assert status == 400
    assert decoded["error"]["type"] == "ProtocolError"
    assert "JSON" in decoded["error"]["message"]


def test_non_object_payloads_are_structured_400(server):
    for payload in (b"[1,2,3]", b'"E"', b"42", b"null"):
        status, decoded = _post_raw(server, "/v1/query", payload)
        assert status == 400, payload
        assert decoded["error"]["type"] == "ProtocolError", payload


def test_oversized_body_is_413_and_survivable(server):
    body = json.dumps({"query": "E" * (2 * MAX_BODY)}).encode()
    assert len(body) > MAX_BODY
    status, decoded = _post_raw(server, "/v1/query", body)
    assert status == 413
    assert decoded["error"]["type"] == "PayloadTooLargeError"
    assert decoded["error"]["limit"] == MAX_BODY
    with ServiceClient(server.url) as client:
        assert client.health()["status"] == "ok"


def test_missing_content_length_is_400(server):
    conn = HTTPConnection(*server.address, timeout=15.0)
    try:
        conn.putrequest("POST", "/v1/query", skip_accept_encoding=True)
        conn.putheader("Content-Type", "application/json")
        conn.endheaders()  # no Content-Length, no body
        response = conn.getresponse()
        decoded = json.loads(response.read().decode())
    finally:
        conn.close()
    assert response.status == 400
    assert decoded["error"]["type"] == "ProtocolError"
    assert "Content-Length" in decoded["error"]["message"]


def test_unknown_route_and_method_are_structured(server):
    status, decoded = _post_raw(server, "/v1/nope", b"{}")
    assert status == 404
    assert decoded["error"]["type"] == "ProtocolError"
    conn = HTTPConnection(*server.address, timeout=15.0)
    try:
        conn.request("DELETE", "/v1/query")
        response = conn.getresponse()
        decoded = json.loads(response.read().decode())
    finally:
        conn.close()
    assert response.status == 405
    assert "DELETE" in decoded["error"]["message"]


def test_unknown_lang_unknown_tenant_bad_param_are_4xx(server):
    cases = [
        ({"query": "E", "lang": "sql"}, 400, "ReproError"),
        ({"query": "E", "tenant": "nobody"}, 400, "ProtocolError"),
        ({"query": "select[1=$s](E)", "params": {"wrong": "a"}}, 400, None),
        ({"query": "E", "params": {"x": [1]}}, 400, "ProtocolError"),
        ({"query": "NOPE"}, 404, "UnknownRelationError"),
        ({"query": "E", "statement": "stmt-404"}, 400, "ProtocolError"),
    ]
    for payload, want_status, want_type in cases:
        status, decoded = _post_raw(
            server, "/v1/query", json.dumps(payload).encode()
        )
        assert status == want_status, payload
        if want_type is not None:
            assert decoded["error"]["type"] == want_type, payload


# --------------------------------------------------------------------- #
# WebSocket frame fuzzing
# --------------------------------------------------------------------- #


def _upgraded_socket(server) -> socket.socket:
    client = ServiceClient(server.url)
    sock = client._ws_socket()
    sock.settimeout(15.0)
    return sock


def _expect_close(sock: socket.socket, code: int) -> None:
    """The server must answer with a close frame carrying ``code`` (or,
    at worst, have torn the transport down)."""
    try:
        while True:
            frame = wsproto.read_frame(
                sock, max_payload=1 << 20, require_mask=False
            )
            if frame.opcode == wsproto.OP_CLOSE:
                got = int.from_bytes(frame.payload[:2], "big")
                assert got == code, f"close code {got}, wanted {code}"
                return
    finally:
        sock.close()


def test_ws_unmasked_client_frame_is_1002(server):
    sock = _upgraded_socket(server)
    # A well-formed but unmasked text frame: clients MUST mask.
    wsproto.send_frame(sock, wsproto.OP_TEXT, b'{"query":"E"}', mask=False)
    _expect_close(sock, 1002)


def test_ws_truncated_frame_is_1002(server):
    sock = _upgraded_socket(server)
    # Masked header declaring 20 payload bytes, then only 3, then EOF.
    header = bytes([0x81, 0x80 | 20]) + b"\x01\x02\x03\x04" + b"abc"
    sock.sendall(header)
    sock.shutdown(socket.SHUT_WR)
    _expect_close(sock, 1002)


def test_ws_oversized_frame_is_1009(server):
    sock = _upgraded_socket(server)
    too_big = MAX_BODY + 1
    header = bytes([0x81, 0x80 | 126]) + too_big.to_bytes(2, "big")
    sock.sendall(header + b"\x00\x00\x00\x00")
    _expect_close(sock, 1009)


def test_ws_unknown_opcode_is_1002(server):
    sock = _upgraded_socket(server)
    sock.sendall(bytes([0x83, 0x80]) + b"\x00\x00\x00\x00")  # opcode 0x3
    _expect_close(sock, 1002)


def test_ws_binary_frame_is_1003(server):
    sock = _upgraded_socket(server)
    wsproto.send_frame(sock, 0x2, b"\x00\x01", mask=True)
    _expect_close(sock, 1003)


def test_ws_bad_json_message_keeps_connection(server):
    """Malformed JSON inside a valid frame is an application error: a
    structured error message, connection still usable."""
    sock = _upgraded_socket(server)
    try:
        wsproto.send_frame(sock, wsproto.OP_TEXT, b"{oops", mask=True)
        frame = wsproto.read_frame(
            sock, max_payload=1 << 20, require_mask=False
        )
        message = json.loads(frame.payload.decode())
        assert message["error"]["type"] == "ProtocolError"
        # Same connection, now a valid request: it streams fine.
        wsproto.send_frame(
            sock,
            wsproto.OP_TEXT,
            json.dumps({"query": "E", "id": "ok"}).encode(),
            mask=True,
        )
        messages = []
        while True:
            frame = wsproto.read_frame(
                sock, max_payload=1 << 20, require_mask=False
            )
            messages.append(json.loads(frame.payload.decode()))
            if messages[-1].get("done"):
                break
        assert messages[-1]["total"] == len(STORE.relation("E"))
        wsproto.send_close(sock, 1000, mask=True)
    finally:
        sock.close()


def test_ws_random_garbage_never_kills_the_server(server):
    """Seeded raw-byte garbage on upgraded sockets; the server stays up."""
    for index in range(10):
        rng = random.Random(f"{FUZZ_SEED}:ws:{index}")
        sock = _upgraded_socket(server)
        try:
            blob = bytes(
                rng.randrange(256) for _ in range(rng.randint(1, 200))
            )
            try:
                sock.sendall(blob)
                sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass  # server already slammed the door — acceptable
            # Drain whatever the server answers until it closes.
            try:
                while True:
                    if not sock.recv(4096):
                        break
            except OSError:
                pass
        finally:
            sock.close()
    with ServiceClient(server.url) as client:
        assert client.health()["status"] == "ok"
        assert client.query("E")["total"] == len(STORE.relation("E"))
