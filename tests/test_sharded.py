"""Unit tests for the hash-sharded columnar store and its executor.

The randomized cross-engine agreement (which includes the sharded
engine) lives in ``test_differential.py``; these tests pin the
deterministic pieces: the partition invariants, the co-partitioned /
repartition / broadcast join strategies, the fixpoint bookkeeping, the
store-layer error-type fixes that rode along with the backend, the
degenerate ``n = 0`` columnar store, and the facade/CLI wiring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FastEngine,
    NaiveEngine,
    R,
    ShardedEngine,
    complement,
    join,
    select,
    star,
)
from repro.core.engines.sharded import ShardedExecContext, default_shard_count
from repro.core.plan import (
    HashJoinOp,
    JoinSpec,
    choose_shard_key,
    compile_plan,
    shard_output_partition,
)
from repro.db import Database
from repro.errors import (
    EvaluationBudgetError,
    ReproError,
    TriplestoreError,
    UnknownRelationError,
)
from repro.triplestore import ShardedColumnarStore
from repro.triplestore.columnar import sorted_unique
from repro.triplestore.model import Triplestore
from repro.workloads import random_store


@pytest.fixture()
def store() -> Triplestore:
    return Triplestore(
        {
            "E": [
                ("a", "p", "b"),
                ("b", "p", "c"),
                ("c", "q", "a"),
                ("a", "q", "c"),
                ("c", "q", "c"),
            ],
            "F": [("b", "r", "d"), ("c", "r", "d")],
        },
        rho={"a": 0, "b": 1, "c": 0, "d": 1, "p": 1, "q": 0, "r": 0},
    )


# --------------------------------------------------------------------- #
# ShardedColumnarStore
# --------------------------------------------------------------------- #


class TestShardedStore:
    @pytest.mark.parametrize("k", [1, 2, 3, 7])
    @pytest.mark.parametrize("key_pos", [0, 1, 2])
    def test_shards_partition_the_relation(self, store, k, key_pos):
        ss = store.sharded(k, key_pos)
        for name in store.relation_names:
            shards = ss.relation_shards(name)
            assert len(shards) == k
            merged = np.concatenate(shards)
            full = store.columnar().relation_keys(name)
            # Disjoint and exhaustive: union equals the relation.
            assert len(merged) == len(full)
            assert set(merged.tolist()) == set(full.tolist())
            for s, shard in enumerate(shards):
                # Each shard sorted unique and hash-consistent.
                if len(shard) > 1:
                    assert np.all(np.diff(shard) > 0)
                assert np.all(ss.shard_ids(shard, key_pos) == s)

    def test_shares_the_parent_dictionary_encoding(self, store):
        assert store.sharded(3).cs is store.columnar()

    def test_cached_per_configuration(self, store):
        assert store.sharded(3) is store.sharded(3)
        assert store.sharded(3) is not store.sharded(4)
        assert store.sharded(3, key_pos=0) is not store.sharded(3, key_pos=2)

    def test_active_codes_match_unsharded_view(self, store):
        expected = store.columnar().active_codes()
        actual = store.sharded(3).active_codes()
        assert np.array_equal(actual, expected)

    def test_active_codes_sorted_unique(self, store):
        active = store.sharded(2).active_codes()
        assert np.all(np.diff(active) > 0)

    def test_more_shards_than_rows(self, store):
        ss = store.sharded(64)
        shards = ss.relation_shards("F")
        assert sum(len(s) for s in shards) == 2
        assert sum(1 for s in shards if len(s)) <= 2

    def test_invalid_configuration_rejected(self, store):
        with pytest.raises(TriplestoreError):
            ShardedColumnarStore(store.columnar(), 0)
        with pytest.raises(TriplestoreError):
            ShardedColumnarStore(store.columnar(), 2, key_pos=5)

    def test_unknown_relation(self, store):
        with pytest.raises(UnknownRelationError):
            store.sharded(2).relation_shards("Nope")


# --------------------------------------------------------------------- #
# The shard-key choice shared by lowering and execution
# --------------------------------------------------------------------- #


class TestShardKeyChoice:
    def _spec(self, text_out: str, conds: str) -> JoinSpec:
        expr = join(R("E"), R("E"), text_out, conds)
        return JoinSpec(expr.out, expr.conditions)

    def test_co_partitioned_when_keys_align(self):
        spec = self._spec("1,2,3'", "1=1'")
        cond, aligned = choose_shard_key(spec, 0, 0)
        assert cond is not None and aligned == 2

    def test_theta_preferred_over_eta(self):
        spec = self._spec("1,2,3'", "3=1' & rho(2)=rho(2')")
        cond, _ = choose_shard_key(spec, 0, 0)
        assert not cond.on_data

    def test_cartesian_has_no_key(self):
        spec = self._spec("1,1',3", "1!=1'")
        assert choose_shard_key(spec, 0, 0) == (None, 0)

    def test_output_partition_tracks_the_key(self):
        spec = self._spec("1,2,3'", "1=1'")
        cond, _ = choose_shard_key(spec, 0, 0)
        # Output position 1 is the left join key (and the right one, via
        # the equality) — the join's result stays partitioned on it.
        assert shard_output_partition(spec, cond, 0) == 0

    def test_output_partition_lost_when_key_projected_away(self):
        spec = self._spec("2,2,2'", "3=1'")
        cond, _ = choose_shard_key(spec, 0, 0)
        assert shard_output_partition(spec, cond, 0) is None

    def test_lowering_annotates_joins(self, store):
        expr = join(R("E"), R("E"), "1,2,3'", "3=1'")
        plan = compile_plan(expr, store, backend="sharded")
        joins = [op for op in plan.walk() if isinstance(op, HashJoinOp)]
        assert joins and joins[0].shard_strategy == "repartition(left)"
        # Both sides misaligned → the documented "both" vocabulary.
        both = join(R("E"), R("E"), "1,2,3'", "3=3'")
        plan = compile_plan(both, store, backend="sharded")
        (j,) = [op for op in plan.walk() if isinstance(op, HashJoinOp)]
        assert j.shard_strategy == "repartition(both)"
        eta = join(R("E"), R("E"), "1,2,3'", "rho(3)=rho(1')")
        plan = compile_plan(eta, store, backend="sharded")
        (j,) = [op for op in plan.walk() if isinstance(op, HashJoinOp)]
        assert j.shard_strategy == "repartition(both(η))"
        # Other backends never see the annotation.
        plain = compile_plan(expr, store, backend="columnar")
        assert all(
            op.shard_strategy is None
            for op in plain.walk()
            if isinstance(op, HashJoinOp)
        )


# --------------------------------------------------------------------- #
# Engine behaviour pinned on fixed cases
# --------------------------------------------------------------------- #

#: Queries exercising each shard strategy and both fixpoint families.
WORKLOAD = [
    R("E"),
    select(R("E"), "2='q' & rho(1)=rho(3)"),
    join(R("E"), R("E"), "1,2,3'", "1=1'"),  # co-partitioned
    join(R("E"), R("E"), "1,2,3'", "3=1'"),  # repartition(left)
    join(R("E"), R("F"), "1,3',3", "2=1' & rho(2)=rho(2')"),  # θ over η
    join(R("E"), R("E"), "1,2,3'", "rho(3)=rho(1')"),  # pure η exchange
    join(R("E"), R("E"), "1,1',3", "1!=1'"),  # broadcast + inequality
    join(R("E"), R("E"), "2,2,2'", "3=1'"),  # key projected away
    (R("E") | R("F")) - select(R("E"), "1=3"),
    star(R("E"), "1,2,3'", "3=1'"),  # reach, any path
    star(R("E"), "1,2,3'", "3=1' & 2=2'"),  # reach, same label
    star(R("E"), "1,2,2'", "3=1'"),  # general star
]


class TestShardedEngine:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_agrees_on_the_fixed_workload(self, store, k):
        naive, sharded = NaiveEngine(), ShardedEngine(shards=k)
        for expr in WORKLOAD:
            assert sharded.evaluate(expr, store) == naive.evaluate(expr, store), expr

    @pytest.mark.parametrize("key_pos", [1, 2])
    def test_agrees_with_nondefault_partition_key(self, store, key_pos):
        naive = NaiveEngine()
        sharded = ShardedEngine(shards=3, key_pos=key_pos)
        for expr in WORKLOAD:
            assert sharded.evaluate(expr, store) == naive.evaluate(expr, store), expr

    def test_agrees_on_a_larger_random_store(self):
        big = random_store(40, 500, seed=17)
        fast, sharded = FastEngine(), ShardedEngine(shards=4)
        for expr in WORKLOAD:
            if "F" in expr.relation_names():  # single-relation store
                continue
            assert sharded.evaluate(expr, big) == fast.evaluate(expr, big), expr

    def test_complement_and_budget(self, store):
        fast, sharded = FastEngine(), ShardedEngine(shards=3)
        expr = complement(R("E"))
        assert sharded.evaluate(expr, store) == fast.evaluate(expr, store)
        with pytest.raises(EvaluationBudgetError):
            ShardedEngine(max_universe_objects=3, shards=3).evaluate(expr, store)

    def test_partitioned_intermediates_respect_the_invariant(self, store):
        engine = ShardedEngine(shards=3)
        # The join key (1=1') survives in output position 1, so the
        # result stays partitioned — and must be disjoint across shards.
        expr = join(R("E"), R("E"), "1,2,3'", "1=1'")
        plan = engine.compile(expr, store)
        ctx = ShardedExecContext(store, shards=3)
        result = ctx.run(plan)
        assert result.part_pos == 0
        ss = store.sharded(3)
        seen: set[int] = set()
        for s, shard in enumerate(result.shards):
            assert np.all(ss.shard_ids(shard, result.part_pos) == s)
            if len(shard) > 1:
                assert np.all(np.diff(shard) > 0)
            rows = set(shard.tolist())
            assert not rows & seen  # globally deduplicated
            seen |= rows
        assert ctx.execute(plan) == NaiveEngine().evaluate(expr, store)

    def test_lost_partition_key_stays_raw_until_consumed(self, store):
        # The projection drops the join key, so the join's own result is
        # raw (sorted chunks, possible cross-chunk duplicates)…
        expr = join(R("E"), R("E"), "2,2,2'", "3=1'")
        ctx = ShardedExecContext(store, shards=3)
        engine = ShardedEngine(shards=3)
        raw = ctx.run(engine.compile(expr, store))
        assert raw.part_pos is None
        for shard in raw.shards:
            if len(shard) > 1:
                assert np.all(np.diff(shard) > 0)
        assert ctx.execute(engine.compile(expr, store)) == NaiveEngine().evaluate(
            expr, store
        )
        # …and a set-operation consumer re-partitions (re-deduplicating).
        diff_expr = expr - R("E")
        result = ctx.run(engine.compile(diff_expr, store))
        assert result.part_pos == 0
        merged = np.concatenate(result.shards)
        assert len(set(merged.tolist())) == len(merged)
        assert ctx.execute(engine.compile(diff_expr, store)) == NaiveEngine().evaluate(
            diff_expr, store
        )

    def test_thread_pool_branch_agrees(self, store, monkeypatch):
        """Force the pool.map path (normally gated on input size/cores).

        The whole unit suite runs below the dispatch threshold, so
        without this test a regression confined to the parallel branch
        would only surface in benchmark output.
        """
        import repro.core.engines.sharded as sharded_mod

        monkeypatch.setattr(sharded_mod.os, "cpu_count", lambda: 4)
        monkeypatch.setattr(sharded_mod, "_SHARED_POOL", None)
        engine = ShardedEngine(shards=4, executor="thread", dispatch_min=0)
        assert engine._shard_pool() is not None
        naive, fast = NaiveEngine(), FastEngine()
        big = random_store(40, 500, seed=17)
        for expr in WORKLOAD:
            assert engine.evaluate(expr, store) == naive.evaluate(expr, store), expr
            if "F" not in expr.relation_names():
                # FastEngine oracle on the larger store: the naive
                # Theorem 3 fixpoints are cubic and would dominate the
                # suite's runtime.
                assert engine.evaluate(expr, big) == fast.evaluate(expr, big), expr

    def test_shard_count_validated(self):
        with pytest.raises(ReproError):
            ShardedEngine(shards=0)
        with pytest.raises(ReproError):
            ShardedEngine(shards=2, key_pos=3)

    def test_env_default_shard_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "7")
        assert default_shard_count() == 7
        assert ShardedEngine().shards == 7
        for bad in ("nope", "0", "-2"):
            monkeypatch.setenv("REPRO_SHARDS", bad)
            with pytest.raises(ReproError):
                default_shard_count()
        monkeypatch.delenv("REPRO_SHARDS")
        assert ShardedEngine(shards=2).shards == 2


# --------------------------------------------------------------------- #
# The degenerate n = 0 columnar store (satellite regression)
# --------------------------------------------------------------------- #


class TestDegenerateStores:
    def test_empty_store_packs_with_radix_one(self):
        cs = Triplestore.empty().columnar()
        assert cs.n == 0 and cs.radix == 1
        assert len(cs.active_codes()) == 0
        assert cs.decode_triples(cs.relation_keys("E")) == frozenset()

    @pytest.mark.parametrize(
        "engine",
        [FastEngine(), ShardedEngine(shards=3)],
        ids=["set", "sharded"],
    )
    def test_empty_store_evaluates_everywhere(self, engine):
        empty = Triplestore.empty()
        for expr in WORKLOAD:
            if "F" in expr.relation_names():  # single-relation store
                continue
            assert engine.evaluate(expr, empty) == frozenset()

    def test_empty_store_universe_is_empty(self):
        from repro.core import universe

        assert ShardedEngine(shards=2).evaluate(universe(), Triplestore.empty()) == (
            frozenset()
        )


# --------------------------------------------------------------------- #
# Facade and CLI wiring
# --------------------------------------------------------------------- #


class TestBackendWiring:
    def test_database_backend_selects_sharded_engine(self, store):
        db = Database(store, backend="sharded", shards=3)
        assert isinstance(db.engine, ShardedEngine)
        assert db.engine.shards == 3
        assert db.query("join[1,2,3'; 3=1'](E, E)") == Database(store).query(
            "join[1,2,3'; 3=1'](E, E)"
        )

    def test_shards_alone_implies_sharded_backend(self, store):
        assert Database(store, shards=2).backend == "sharded"

    def test_env_var_defaults(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sharded")
        monkeypatch.setenv("REPRO_SHARDS", "2")
        db = Database(store)
        assert db.backend == "sharded" and db.engine.shards == 2

    def test_shards_with_other_backend_rejected(self, store):
        with pytest.raises(ReproError):
            Database(store, backend="columnar", shards=2)

    def test_shards_engine_mismatch_rejected(self, store):
        with pytest.raises(ReproError):
            Database(store, engine=ShardedEngine(shards=2), shards=3)

    def test_explain_mentions_backend_and_strategy(self, store):
        db = Database(store, backend="sharded", shards=4)
        text = db.explain("join[1,2,3'; 3=1'](E, E)", physical=True)
        assert "backend    : sharded (4-way hash-partitioned" in text
        assert "shard=repartition(left)" in text

    def test_cli_backend_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.triplestore.io import dump_path

        path = tmp_path / "store.tstore"
        dump_path(
            Triplestore([("a", "p", "b"), ("b", "p", "c")], rho={"a": 1}), str(path)
        )
        code = main(
            ["query", str(path), "star[1,2,3'; 3=1'](E)",
             "--backend", "sharded", "--shards", "2", "--limit", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# 3 triples" in out

    def test_cli_rejects_shards_without_sharded_backend(self, tmp_path, capsys):
        from repro.cli import main
        from repro.triplestore.io import dump_path

        path = tmp_path / "store.tstore"
        dump_path(Triplestore([("a", "p", "b")]), str(path))
        assert main(["query", str(path), "E", "--shards", "2"]) == 1
        assert "--shards" in capsys.readouterr().err

    def test_cli_explain_sharded(self, capsys):
        from repro.cli import main

        code = main(
            ["explain", "join[1,2,3'; 3=1'](E, E)",
             "--physical", "--backend", "sharded", "--shards", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard=" in out and "4-way" in out


# --------------------------------------------------------------------- #
# Store-layer error-type regressions (satellite fixes)
# --------------------------------------------------------------------- #


class TestStoreLayerErrors:
    def test_restrict_unknown_relation(self, store):
        with pytest.raises(UnknownRelationError) as err:
            store.restrict(["E", "Nope"])
        assert "Nope" in str(err.value)
        assert "E" in str(err.value)  # lists what is available

    def test_encode_triples_outside_universe(self, store):
        cs = store.columnar()
        with pytest.raises(TriplestoreError) as err:
            cs.encode_triples([("a", "p", "zebra")])
        assert "zebra" in str(err.value)
        assert not isinstance(err.value, KeyError)

    def test_active_codes_still_sorted_unique(self, store):
        active = store.columnar().active_codes()
        assert np.all(np.diff(active) > 0)
        decoded = {store.columnar().objects[c] for c in active.tolist()}
        expected = {o for t in store.all_triples() for o in t}
        assert decoded == expected

    def test_sorted_unique_is_the_merge_primitive(self):
        keys = np.array([5, 1, 5, 3, 1], dtype=np.int64)
        assert sorted_unique(keys).tolist() == [1, 3, 5]
