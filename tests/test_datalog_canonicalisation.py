"""Edge cases of the evaluator's equality canonicalisation.

The semi-naive engine folds positive ``x = y`` / ``x = c`` literals into
the atoms before matching (turning the Prop 2 translation's
generate-and-filter joins into indexed unification).  These tests pin
the tricky behaviours: constant pins, merged groups, contradictions,
and interaction with negation and ∼.
"""

from repro.datalog import parse_program, run_program
from repro.triplestore import Triplestore

STORE = Triplestore(
    [
        ("a", "p", "b"),
        ("b", "p", "c"),
        ("a", "q", "c"),
    ],
    rho={"a": 1, "b": 1, "c": 2, "p": 0, "q": 0},
)


class TestEqualityFolding:
    def test_var_var_equality_joins(self):
        p = parse_program("Ans(x,y,w) :- E(x,y,z), E(u,v,w), z = u.")
        got = run_program(p, STORE)
        assert ("a", "p", "c") in got

    def test_transitive_equalities(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), E(u,v,w), x = u, u = x.")
        assert run_program(p, STORE) == STORE.relation("E")

    def test_var_const_pin(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), y = 'q'.")
        assert run_program(p, STORE) == {("a", "q", "c")}

    def test_pin_propagates_through_group(self):
        # x = y and y = 'a' pins x to 'a' as well.
        p = parse_program("Ans(x,y,z) :- E(x,y,z), E(u,v,w), x = u, u = 'a'.")
        got = run_program(p, STORE)
        assert got == {("a", "p", "b"), ("a", "q", "c")}

    def test_contradictory_pins_yield_empty(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), x = 'a', x = 'b'.")
        assert run_program(p, STORE) == frozenset()

    def test_pinned_head_variable(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), x = 'a'.")
        got = run_program(p, STORE)
        assert got == {("a", "p", "b"), ("a", "q", "c")}

    def test_negated_equalities_stay_checks(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), x != 'a'.")
        assert run_program(p, STORE) == {("b", "p", "c")}

    def test_interaction_with_sim(self):
        # Merge x/u, then require same data value with w.
        p = parse_program("Ans(x,y,w) :- E(x,y,z), E(u,v,w), z = u, ~(x, x).")
        got = run_program(p, STORE)
        assert ("a", "p", "c") in got

    def test_constant_pin_on_sim_variable_keeps_rho_semantics(self):
        """Regression: folding ``z = 'b'`` into ``~(x, z)`` must not turn
        ρ(z) into the raw data value 'b' — the pin stays a filter."""
        p = parse_program("Ans(x,y,z) :- E(x,y,z), z = 'b', ~(x, z).")
        # ρ(a) = ρ(b) = 1, so (a, p, b) qualifies; nothing else ends in b.
        assert run_program(p, STORE) == {("a", "p", "b")}

    def test_constant_pin_on_negated_sim_variable(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), z = 'c', not ~(x, z).")
        # ρ(d) = ρ(c) = 2, so ~(d, c) holds and the negation drops the
        # triple.  The buggy folding compared ρ(d) = 2 with the raw
        # object 'c' instead, kept it, and answered {(d, p, c)}.
        store = Triplestore([("d", "p", "c")], rho={"d": 2, "c": 2})
        assert run_program(p, store) == frozenset()

    def test_recursive_rule_with_equalities(self):
        p = parse_program(
            """
            R(x,y,z) :- E(x,y,z).
            R(x,y,w) :- R(x,y,z), E(u,v,w), z = u, y = v.
            Ans(x,y,z) :- R(x,y,z).
            """
        )
        got = run_program(p, STORE)
        assert ("a", "p", "c") in got  # a-p->b-p->c shares label p
        assert ("a", "q", "b") not in got
