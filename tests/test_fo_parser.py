"""Tests for the FO/TrCl text syntax."""

import pytest

from repro.errors import ParseError
from repro.logic import (
    And,
    ConstT,
    Eq,
    Exists,
    Forall,
    Not,
    Or,
    RelAtom,
    Sim,
    Trcl,
    Var,
    satisfies,
)
from repro.logic.parser import parse_formula
from repro.triplestore import Triplestore


class TestSyntax:
    def test_atom(self):
        assert parse_formula("E(x, y, z)") == RelAtom("E", (Var("x"), Var("y"), Var("z")))

    def test_constants(self):
        got = parse_formula("E('a', y, 'b')")
        assert got == RelAtom("E", (ConstT("a"), Var("y"), ConstT("b")))

    def test_equality_and_sim(self):
        assert parse_formula("x = y") == Eq(Var("x"), Var("y"))
        assert parse_formula("~(x, z)") == Sim(Var("x"), Var("z"))

    def test_precedence_and_binds_tighter_than_or(self):
        got = parse_formula("x = y and y = z or x = z")
        assert isinstance(got, Or)
        assert isinstance(got.left, And)

    def test_negation(self):
        got = parse_formula("not x = y")
        assert got == Not(Eq(Var("x"), Var("y")))

    def test_quantifiers(self):
        got = parse_formula("exists x, y (E(x, y, z))")
        assert got == Exists("x", Exists("y", RelAtom("E", (Var("x"), Var("y"), Var("z")))))
        assert isinstance(parse_formula("forall x (x = x)"), Forall)

    def test_nested_quantifier_inside_conjunction(self):
        got = parse_formula("x = x and exists y (E(x, y, x))")
        assert isinstance(got, And) and isinstance(got.right, Exists)

    def test_trcl(self):
        got = parse_formula("[trcl x; y exists w (E(x, w, y))](u; v)")
        assert isinstance(got, Trcl)
        assert got.xs == ("x",) and got.ys == ("y",)
        assert got.t1s == (Var("u"),) and got.t2s == (Var("v"),)

    def test_trcl_pairs(self):
        got = parse_formula("[trcl x1, x2; y1, y2 E(x1, x2, y1) and y2 = x2](a, b; c, d)")
        assert isinstance(got, Trcl)
        assert len(got.xs) == 2

    @pytest.mark.parametrize(
        "text",
        ["", "E(x, y)", "exists (E(x,y,z))", "x =", "E(x, y, z) and", "[trcl x y](u; v)"],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_formula(text)


class TestParsedSemantics:
    STORE = Triplestore(
        [("a", "p", "b"), ("b", "p", "a")], rho={"a": 1, "b": 1, "p": 2}
    )

    def test_round_to_evaluation(self):
        phi = parse_formula("exists y (E(x, y, z) and ~(x, z))")
        assert satisfies(phi, self.STORE, {"x": "a", "z": "b"})
        assert not satisfies(phi, self.STORE, {"x": "a", "z": "p"})

    def test_fo3_pipeline(self):
        """Parsed FO³ text → TriAL → evaluation, against direct FO."""
        from repro.core import evaluate
        from repro.logic import active_domain
        from repro.translations import fo3_to_trial

        phi = parse_formula("exists y (E(x, y, z)) and not x = z")
        expr = fo3_to_trial(phi)
        domain = sorted(active_domain(self.STORE))
        want = frozenset(
            (a, b, c)
            for a in domain
            for b in domain
            for c in domain
            if satisfies(phi, self.STORE, {"x": a, "y": b, "z": c})
        )
        assert evaluate(expr, self.STORE) == want
