"""Proposition 1, generalised: σ-collisions found constructively on
random documents all exhibit the paper's phenomenon."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import evaluate_nre, parse_nre
from repro.rdf import RDFGraph, evaluate_nsparql_nre, sigma
from repro.rdf.sigma import sigma_collision_pair

RESOURCES = ("r0", "r1", "r2", "r3")

documents = st.builds(
    RDFGraph,
    st.sets(
        st.tuples(
            st.sampled_from(RESOURCES),
            st.sampled_from(RESOURCES),
            st.sampled_from(RESOURCES),
        ),
        min_size=2,
        max_size=10,
    ),
)

PROBES = [parse_nre(t) for t in ("next", "edge.node", "next*", "(next+edge)*", "next.[edge]")]


@given(documents)
@settings(max_examples=120, deadline=None)
def test_collision_pairs_have_equal_images(document):
    pair = sigma_collision_pair(document)
    if pair is None:
        return
    d, d_prime = pair
    assert d != d_prime
    assert d.triples < d_prime.triples
    assert sigma(d) == sigma(d_prime)


@given(documents)
@settings(max_examples=80, deadline=None)
def test_no_nre_separates_a_collision_pair(document):
    """Over *any* found collision, every probe NRE answers identically
    (both over the σ graphs and via the native axis semantics)."""
    pair = sigma_collision_pair(document)
    if pair is None:
        return
    d, d_prime = pair
    g, g_prime = sigma(d), sigma(d_prime)
    for nre in PROBES:
        assert evaluate_nre(g, nre) == evaluate_nre(g_prime, nre)
        assert evaluate_nsparql_nre(d, nre) == evaluate_nsparql_nre(d_prime, nre)


def test_collisions_do_occur():
    """The generator isn't vacuous: a concrete colliding document."""
    doc = RDFGraph(
        [("s", "p", "o1"), ("s", "q", "o2"), ("t", "p", "o2"), ("t", "q", "o1"),
         ("s", "p", "o2")]
    )
    pair = sigma_collision_pair(doc.without(("s", "p", "o2")))
    assert pair is not None


def test_trial_distinguishes_collision_pairs():
    """TriAL queries CAN tell collision pairs apart — they query the
    triples directly, not the encoding."""
    from repro.core import R, evaluate

    doc = RDFGraph(
        [("s", "p", "o1"), ("s", "q", "o2"), ("t", "p", "o2"), ("t", "q", "o1")]
    )
    pair = sigma_collision_pair(doc)
    assert pair is not None
    d, d_prime = pair
    assert evaluate(R("E"), d.to_triplestore()) != evaluate(
        R("E"), d_prime.to_triplestore()
    )
