"""Semantic analyzer tests (:mod:`repro.analysis.semantics`).

Three layers: unit tests for the union-find condition solver, a
mutation corpus asserting each ``SEM-*`` rule fires on its exact
trigger and stays silent on near-miss mutants, and a ≥200-case seeded
sweep machine-checking every emptiness/unsatisfiability verdict
against the paper-faithful NaiveEngine — a verdict the oracle refutes
is an unsound analyzer, full stop.  The optimizer/planner tests then
pin the verdict-gated rewrites: prune-to-∅, minimal-core reduction,
trivial-star collapse and the ``EmptyOp`` plan short-circuit.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.invariants import Finding, SEM_RULES
from repro.analysis.semantics import (
    analyze_expr,
    condition_core,
    conditions_unsat,
    expr_is_empty,
    star_is_trivial,
)
from repro.core import NaiveEngine, R, select
from repro.core.conditions import parse_conditions
from repro.core.expressions import Diff, Intersect, Join, Select, Star, Union
from repro.core.optimizer import is_empty_expr, optimize
from repro.core.parser import parse
from repro.triplestore.model import Triplestore

STORE = Triplestore(
    [("a", "p", "b"), ("b", "p", "c"), ("c", "q", "a"), ("a", "r", "a")],
    {"a": 0, "b": 0, "c": 1},
)


def rules_of(findings) -> list[str]:
    return sorted({f.rule for f in findings})


# --------------------------------------------------------------------- #
# The condition solver
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "spec",
    [
        "1='a' & 1='b'",                      # two constants, one class
        "1=2 & 2=3 & 1!=3",                   # transitive equality vs !=
        "1=2 & 1!=2",                         # direct contradiction
        "1!=1",                               # irreflexive
        "'a'='b'",                            # statically false
        "rho(1)!=rho(1)",                     # η irreflexive
        "1=2 & rho(1)!=rho(2)",               # θ-equality forces ρ-equality
        "1='a' & 2='a' & rho(1)!=rho(2)",     # same via shared constant
        "1=$p & 1!=$p",                       # parameters are fixed values
    ],
)
def test_unsat_conjunctions(spec):
    assert conditions_unsat(parse_conditions(spec))


@pytest.mark.parametrize(
    "spec",
    [
        "1='a' & 2='b'",
        "1=2 & 2=3",
        "rho(1)=rho(2) & 1!=2",               # η never forces θ
        "rho(1)='x' & rho(2)='y'",            # ρ may distinguish objects
        "1=$p & 1!=$q",                       # distinct params may differ
        "1!=2 & 2!=3 & 1!=3",
        "'a'='a'",
        "",
    ],
)
def test_sat_conjunctions(spec):
    assert not conditions_unsat(parse_conditions(spec))


def test_condition_core_drops_entailed():
    assert condition_core(parse_conditions("1=2 & 2=1")) == parse_conditions("2=1")
    assert condition_core(parse_conditions("1=1")) == ()
    assert condition_core(parse_conditions("'a'='a' & 1=2")) == parse_conditions(
        "1=2"
    )
    # θ-equality entails the matching η-equality (ρ is a function).
    core = condition_core(parse_conditions("1=2 & rho(1)=rho(2)"))
    assert core == parse_conditions("1=2")
    # Transitive closure: 1=3 follows from 1=2 & 2=3.
    core = condition_core(parse_conditions("1=2 & 2=3 & 1=3"))
    assert len(core) == 2


def test_condition_core_keeps_independent_conditions():
    spec = "1=2 & rho(1)='x' & 3!='a'"
    conds = parse_conditions(spec)
    assert condition_core(conds) == conds


def test_core_of_duplicate_disequalities():
    assert len(condition_core(parse_conditions("1!=2 & 1!=2"))) == 1
    # A disequality is NOT entailed by unrelated conditions.
    conds = parse_conditions("1!=2 & 2!=3")
    assert condition_core(conds) == conds


# --------------------------------------------------------------------- #
# Mutation corpus: one trigger + near-miss mutants per SEM-* rule
# --------------------------------------------------------------------- #


def test_sem_unsat_fires_exactly():
    bad = select(R("E"), "1='a' & 1='b'")
    assert "SEM-UNSAT" in rules_of(analyze_expr(bad))
    # Mutant: distinct positions — satisfiable, no SEM-UNSAT anywhere.
    good = select(R("E"), "1='a' & 2='b'")
    assert "SEM-UNSAT" not in rules_of(analyze_expr(good))


def test_sem_empty_fires_on_diff_self_and_propagates():
    dead = Diff(R("E"), R("E"))
    findings = analyze_expr(dead)
    assert rules_of(findings) == ["SEM-EMPTY"]
    # Only the maximal empty region is reported.
    shell = Intersect(dead, R("E"))
    empties = [f for f in analyze_expr(shell) if f.rule == "SEM-EMPTY"]
    assert len(empties) == 1
    assert "the query" in empties[0].message
    # Mutant: Diff of different relations is not provably empty.
    assert analyze_expr(Diff(R("E"), R("F"))) == []
    # Union needs BOTH sides empty: the root survives, only the dead
    # branch is flagged (as a subexpression, not "the query").
    branch = [f for f in analyze_expr(Union(dead, R("E"))) if f.rule == "SEM-EMPTY"]
    assert len(branch) == 1
    assert "this subexpression" in branch[0].message


def test_sem_empty_suppressed_under_empty_parent():
    dead = Diff(R("E"), R("E"))
    expr = Join(dead, select(R("E"), "1='a' & 1='b'"), (0, 1, 2), ())
    empties = [f for f in analyze_expr(expr) if f.rule == "SEM-EMPTY"]
    assert len(empties) == 1  # the root, not its two dead children


def test_sem_trivial_star_fires_exactly():
    trivial = Star(R("E"), (0, 1, 5), parse_conditions("3=1' & 3!=1'"))
    assert "SEM-TRIVIAL-STAR" in rules_of(analyze_expr(trivial))
    live = Star(R("E"), (0, 1, 5), parse_conditions("3=1'"))
    assert analyze_expr(live) == []
    # Idempotent nesting is the other trigger.
    nested = Star(live, live.out, live.conditions, live.side)
    assert "SEM-TRIVIAL-STAR" in rules_of(analyze_expr(nested))


def test_sem_redundant_fires_exactly():
    redundant = select(R("E"), "1=2 & 2=1")
    findings = analyze_expr(redundant)
    assert rules_of(findings) == ["SEM-REDUNDANT"]
    assert "1=2" in findings[0].message or "2=1" in findings[0].message
    assert analyze_expr(select(R("E"), "1=2 & 2=3")) == []


def test_sem_unsat_suppresses_redundancy_noise():
    # An unsatisfiable list is reported as UNSAT only — reducing it
    # further would be meaningless.
    findings = analyze_expr(select(R("E"), "1=2 & 2=1 & 1!=2"))
    assert rules_of(findings) == ["SEM-EMPTY", "SEM-UNSAT"]


def test_sem_unknown_rel_needs_a_store():
    expr = Join(R("E"), R("Zzz"), (0, 1, 2), ())
    assert analyze_expr(expr) == []  # no store, no verdict
    findings = analyze_expr(expr, STORE)
    assert rules_of(findings) == ["SEM-UNKNOWN-REL"]
    assert "'Zzz'" in findings[0].message
    assert analyze_expr(R("E"), STORE) == []


def test_select_ignore_filter_and_validation():
    expr = select(Diff(R("E"), R("E")), "1=2 & 2=1")
    assert rules_of(analyze_expr(expr)) == ["SEM-EMPTY", "SEM-REDUNDANT"]
    only = analyze_expr(expr, select=["SEM-EMPTY"])
    assert rules_of(only) == ["SEM-EMPTY"]
    none = analyze_expr(expr, ignore=["SEM-EMPTY", "SEM-REDUNDANT"])
    assert none == []
    with pytest.raises(ValueError, match="SEM-BOGUS"):
        analyze_expr(expr, select=["SEM-BOGUS"])
    # Any unified-namespace rule is accepted (even if never produced).
    assert analyze_expr(expr, select=["PLAN-ARITY"]) == []


def test_every_sem_rule_has_a_trigger_in_this_corpus():
    """The corpus above covers the whole SEM-* catalog (SEM-DEAD-RULE
    lives in the Datalog tests below)."""
    covered = {
        "SEM-UNSAT",
        "SEM-EMPTY",
        "SEM-TRIVIAL-STAR",
        "SEM-REDUNDANT",
        "SEM-UNKNOWN-REL",
        "SEM-DEAD-RULE",
    }
    assert covered == set(SEM_RULES)


# --------------------------------------------------------------------- #
# The seeded sweep: every verdict confirmed by the oracle
# --------------------------------------------------------------------- #


def test_verdicts_hold_under_naive_engine():
    """≥200 seeded cases: wherever the analyzer says a (sub)expression
    is empty or a condition list unsatisfiable, the NaiveEngine must
    return zero triples for it — on a store it has never seen."""
    from tests.diffcheck import (
        random_semantic_expression,
        random_triplestore,
    )

    engine = NaiveEngine()
    n_cases = 220
    confirmed_empty = 0
    confirmed_unsat = 0
    for index in range(n_cases):
        rng = random.Random(f"semantic-sweep:{index}")
        store = random_triplestore(rng)
        expr = random_semantic_expression(rng, store.relation_names)
        for node in dict.fromkeys(expr.walk()):
            if isinstance(node, (Select, Join)) and conditions_unsat(
                node.conditions
            ):
                assert engine.evaluate(node, store) == frozenset(), (
                    f"case {index}: SEM-UNSAT verdict refuted on {node!r}"
                )
                confirmed_unsat += 1
            if expr_is_empty(node):
                assert engine.evaluate(node, store) == frozenset(), (
                    f"case {index}: SEM-EMPTY verdict refuted on {node!r}"
                )
                confirmed_empty += 1
    # The sweep must actually exercise the verdicts, not vacuously pass.
    assert confirmed_unsat >= 50, confirmed_unsat
    assert confirmed_empty >= 50, confirmed_empty


def test_satisfiable_verdicts_are_not_overclaimed():
    """Dual direction on targeted near-misses: satisfiable condition
    lists whose shapes resemble contradictions must keep their rows."""
    engine = NaiveEngine()
    expr = parse("select[rho(1)=rho(3) & 1!=3](E)")
    result = engine.evaluate(expr, STORE)
    assert ("a", "p", "b") in result  # rho(a)=rho(b)=0, a != b
    assert not expr_is_empty(expr)
    # Params are binding-dependent, never unsat on their own.
    assert not expr_is_empty(parse("select[1=$p](E)"))


# --------------------------------------------------------------------- #
# Verdict-gated rewrites (the optimizer)
# --------------------------------------------------------------------- #


def test_optimize_prunes_unsat_select_to_empty():
    out = optimize(select(R("E"), "1='a' & 1='b'"))
    assert is_empty_expr(out)
    assert out.relation_names() == frozenset({"E"})


def test_optimize_prunes_unsat_join_to_empty():
    expr = Join(R("E"), R("E"), (0, 1, 2), parse_conditions("1=1' & 1!=1'"))
    assert is_empty_expr(optimize(expr))


def test_optimize_drops_redundant_conditions():
    out = optimize(select(R("E"), "1!=2 & 1!=2"))
    assert isinstance(out, Select)
    assert out.conditions == parse_conditions("1!=2")


def test_optimize_collapses_trivial_star():
    star = Star(R("E"), (0, 1, 5), parse_conditions("3=1' & 3!=1'"))
    assert optimize(star) == R("E")


def test_optimize_semantic_flag_off_keeps_syntax_only():
    bad = select(R("E"), "1='a' & 1='b'")
    assert optimize(bad, semantic=False) == bad
    dup = select(R("E"), "1!=2 & 1!=2")
    # Syntactic dedup still applies (merge_selects uses dict.fromkeys),
    # but no entailment reasoning does.
    kept = optimize(select(R("E"), "1=2 & 2=1"), semantic=False)
    assert isinstance(kept, Select) and len(kept.conditions) == 2
    del dup


def test_optimize_preserves_statically_true_selects():
    # All conditions entailed → the select disappears entirely.
    assert optimize(select(R("E"), "1=1")) == R("E")


def test_rewrites_are_sound_on_a_store():
    engine = NaiveEngine()
    exprs = [
        select(R("E"), "1='a' & 1='b'"),
        Join(R("E"), R("E"), (0, 1, 5), parse_conditions("3=1' & 3!=1'")),
        Star(R("E"), (0, 1, 5), parse_conditions("3=1' & 2!=2")),
        Union(Diff(R("E"), R("E")), select(R("E"), "1=2 & 2=1")),
    ]
    for expr in exprs:
        raw = engine.evaluate(expr, STORE)
        rewritten = optimize(expr)
        assert engine.evaluate(rewritten, STORE) == raw, repr(expr)


# --------------------------------------------------------------------- #
# The planner short-circuit (EmptyOp) and the session path
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["set", "columnar", "sharded"])
def test_provably_empty_queries_compile_to_empty_plans(backend):
    from repro.db import Database

    with Database(STORE, backend=backend) as db:
        report = db.explain_report("select[1='a' & 1='b'](E)")
        assert report.plan["op"] == "Empty"
        assert report.plan["est_rows"] == 0.0
        assert list(db.query("select[1='a' & 1='b'](E)")) == []
        assert list(db.query("(E - E)")) == []
        # A live query on the same session still works (cache seams).
        assert len(list(db.query("E"))) == 4


def test_empty_plan_executes_on_all_backends():
    from repro.core.plan import EmptyOp, compile_plan

    plan = compile_plan(parse("select[1='a' & 1='b'](E)"), STORE)
    assert isinstance(plan, EmptyOp)
    assert plan.label() == "Empty(∅)"


def test_universe_queries_keep_their_plans():
    """U-mentioning expressions are exempt from the short-circuit so
    budget errors surface identically on every backend."""
    from repro.core.plan import EmptyOp, compile_plan

    plan = compile_plan(parse("select[1='a' & 1='b'](U)"), STORE)
    assert not isinstance(plan, EmptyOp)


def test_explain_report_carries_analysis_findings():
    from repro.db import Database

    with Database(STORE, optimize=False) as db:
        report = db.explain_report("select[1='a' & 1='b'](E)")
        rules = {f["rule"] for f in report.analysis}
        assert "SEM-UNSAT" in rules and "SEM-EMPTY" in rules
        assert "analysis" in report.to_dict()
        clean = db.explain_report("E")
        assert clean.analysis == ()


def test_database_analyze_reports_pre_optimization():
    from repro.db import Database

    with Database(STORE) as db:  # optimizer ON: rewrites would consume it
        findings = db.analyze("select[1='a' & 1='b'](E)")
        assert "SEM-UNSAT" in {f.rule for f in findings}
        assert db.analyze("E") == ()


def test_finding_to_dict_is_minimal():
    assert Finding("SEM-EMPTY", "m", op="E").to_dict() == {
        "rule": "SEM-EMPTY",
        "message": "m",
        "op": "E",
    }
    assert Finding("ENV-DOC", "m", "a.py", 3).to_dict() == {
        "rule": "ENV-DOC",
        "message": "m",
        "path": "a.py",
        "line": 3,
    }


# --------------------------------------------------------------------- #
# CLI and service surfaces
# --------------------------------------------------------------------- #


def test_cli_analyze_exit_codes(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["analyze", "select[1='a' & 1='b'](E)"]) == 1
    out = capsys.readouterr()
    assert "SEM-UNSAT" in out.out and "finding(s)" in out.err
    assert cli_main(["analyze", "E"]) == 0
    assert "no findings" in capsys.readouterr().err
    assert cli_main(["analyze", "(E - E)", "--ignore", "SEM-EMPTY"]) == 0
    assert (
        cli_main(["analyze", "select[1=2 & 2=1](E)", "--select", "SEM-REDUNDANT"])
        == 1
    )


def test_cli_analyze_optimized_consumes_findings(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["analyze", "select[1=2 & 2=1](E)", "--optimize"]) == 0
    capsys.readouterr()


def test_service_envelopes_carry_analysis_warnings():
    from repro.db import Database
    from repro.service import QueryServer, ServiceClient
    from repro.service.config import ServiceConfig

    with Database(STORE) as db:
        server = QueryServer(
            {"default": db}, ServiceConfig(host="127.0.0.1", port=0)
        )
        server.start()
        try:
            host, port = server.address
            client = ServiceClient(f"http://{host}:{port}")
            page = client.query("select[1='a' & 1='b'](E)")
            assert page["rows"] == []
            rules = {w["rule"] for w in page["analysis"]}
            assert "SEM-UNSAT" in rules
            clean = client.query("E")
            assert "analysis" not in clean  # omitted when nothing fired
            report = client.explain("(E - E)")
            assert {f["rule"] for f in report["analysis"]} >= {"SEM-EMPTY"}
        finally:
            server.stop()


# --------------------------------------------------------------------- #
# Datalog program analysis
# --------------------------------------------------------------------- #


def test_datalog_unsat_rule_bodies():
    from repro.datalog.parser import parse_program
    from repro.datalog.validate import analyze_program

    program = parse_program(
        """
        Ans(x,y,z) :- E(x,y,z), x = y, x != y.
        Ans(x,y,z) :- E(x,y,z), x = y, not ~(x,y).
        Ans(x,y,z) :- E(x,y,z).
        """
    )
    findings = analyze_program(program)
    assert [f.rule for f in findings] == ["SEM-UNSAT", "SEM-UNSAT"]


def test_datalog_dead_rules():
    from repro.datalog.parser import parse_program
    from repro.datalog.validate import analyze_program

    program = parse_program(
        """
        Ans(x,y,z) :- Mid(x,y,z).
        Mid(x,y,z) :- E(x,y,z).
        Orphan(x,y,z) :- E(x,y,z).
        """
    )
    findings = analyze_program(program)
    assert [f.rule for f in findings] == ["SEM-DEAD-RULE"]
    assert "Orphan" in findings[0].message


def test_datalog_clean_program_is_silent():
    from repro.datalog.parser import parse_program
    from repro.datalog.validate import analyze_program

    program = parse_program(
        """
        Ans(x,y,z) :- E(x,y,z), ~(x,y).
        Ans(x,y,z) :- E(x,y,z), x != y.
        """
    )
    assert analyze_program(program) == []


def test_datalog_sat_congruence_near_miss():
    from repro.datalog.parser import parse_program
    from repro.datalog.validate import analyze_program

    # η-equality does not force θ-equality: satisfiable.
    program = parse_program("Ans(x,y,z) :- E(x,y,z), ~(x,y), x != y.")
    assert analyze_program(program) == []
