"""Tests for the graph database model, RPQs, NREs and GXPath."""

import pytest

from repro.errors import GraphError
from repro.graphdb import (
    Axis,
    Concat,
    DataNodeTest,
    DataPathTest,
    Eps,
    GraphDB,
    HasPath,
    NodeNot,
    PathComplement,
    PathUnion,
    StarPath,
    Test,
    Top,
    evaluate_gxpath,
    evaluate_gxpath_nodes,
    evaluate_nre,
    evaluate_rpq,
    evaluate_rpq_by_enumeration,
    parse_nre,
    uses_data,
)
from hypothesis import given, settings
from repro.workloads.generators import random_graph

import hypothesis.strategies as st


@pytest.fixture()
def g() -> GraphDB:
    return GraphDB(
        ["u", "v", "w", "x"],
        [
            ("u", "a", "v"),
            ("v", "a", "w"),
            ("v", "b", "x"),
            ("x", "b", "u"),
        ],
        rho={"u": 1, "v": 2, "w": 1, "x": 2},
    )


class TestModel:
    def test_successors_predecessors(self, g):
        assert g.successors("u", "a") == {"v"}
        assert g.predecessors("x", "b") == {"v"}
        assert g.successors("u", "b") == frozenset()

    def test_sigma_inferred(self, g):
        assert g.sigma == {"a", "b"}

    def test_explicit_sigma_validated(self):
        with pytest.raises(GraphError):
            GraphDB(["u"], [("u", "a", "u")], sigma=["b"])

    def test_edges_must_use_known_nodes(self):
        with pytest.raises(GraphError):
            GraphDB(["u"], [("u", "a", "zz")])

    def test_to_triplestore(self, g):
        t = g.to_triplestore()
        assert ("u", "a", "v") in t.relation("E")
        assert t.objects == g.nodes | g.sigma
        assert t.rho("u") == 1 and t.rho("a") is None

    def test_to_triplestore_rejects_overlap(self):
        g = GraphDB(["a", "u"], [("u", "a", "a")])
        with pytest.raises(GraphError):
            g.to_triplestore()


class TestRPQ:
    def test_basic_path(self, g):
        assert ("u", "w") in evaluate_rpq(g, "a.a")
        assert ("u", "x") in evaluate_rpq(g, "a.b")

    def test_star(self, g):
        got = evaluate_rpq(g, "(a+b)*")
        assert ("u", "u") in got  # empty path
        assert ("u", "w") in got

    def test_inverse(self, g):
        assert ("v", "u") in evaluate_rpq(g, "a-")

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_product_matches_enumeration(self, seed):
        graph = random_graph(5, 7, seed=seed)
        for regex in ("a.b", "a*", "(a.b)+b-", "a.(a+b)*"):
            fast = evaluate_rpq(graph, regex)
            slow = evaluate_rpq_by_enumeration(graph, regex)
            assert fast == slow, regex


class TestNRE:
    def test_nesting_filters_midpoints(self, g):
        # a-step into a node that has an outgoing b-edge, then a again.
        nre = parse_nre("a.[b].a")
        got = evaluate_nre(g, nre)
        assert ("u", "w") in got  # u -a-> v (v has b out) -a-> w

    def test_nesting_blocks(self, g):
        nre = parse_nre("a.[a.a].a")  # v has no a.a path
        assert evaluate_nre(g, nre) == frozenset()

    def test_star_includes_diagonal(self, g):
        got = evaluate_nre(g, parse_nre("a*"))
        assert all((v, v) in got for v in g.nodes)

    def test_inverse(self, g):
        assert ("w", "v") in evaluate_nre(g, parse_nre("a-"))


class TestGXPath:
    def test_eps_and_top(self, g):
        assert evaluate_gxpath(g, Eps()) == {(v, v) for v in g.nodes}
        assert evaluate_gxpath_nodes(g, Top()) == g.nodes

    def test_complement(self, g):
        got = evaluate_gxpath(g, PathComplement(Axis("a")))
        assert ("u", "v") not in got
        assert ("u", "w") in got
        assert len(got) == 16 - 2

    def test_double_complement_is_identity(self, g):
        alpha = Concat(Axis("a"), Axis("b"))
        assert evaluate_gxpath(g, PathComplement(PathComplement(alpha))) == \
            evaluate_gxpath(g, alpha)

    def test_star_reflexive_transitive(self, g):
        got = evaluate_gxpath(g, StarPath(Axis("a")))
        assert ("u", "u") in got and ("u", "w") in got

    def test_node_test_in_path(self, g):
        alpha = Concat(Axis("a"), Concat(Test(HasPath(Axis("b"))), Axis("a")))
        assert ("u", "w") in evaluate_gxpath(g, alpha)

    def test_node_negation(self, g):
        no_b_out = evaluate_gxpath_nodes(g, NodeNot(HasPath(Axis("b"))))
        assert no_b_out == {"u", "w"}

    def test_data_path_test(self, g):
        # rho: u=1, v=2, w=1, x=2
        eq = evaluate_gxpath(g, DataPathTest(Concat(Axis("a"), Axis("a")), True))
        assert eq == {("u", "w")}
        neq = evaluate_gxpath(g, DataPathTest(Axis("a"), False))
        assert ("u", "v") in neq and ("v", "w") in neq

    def test_data_node_test(self, g):
        # ⟨a = b⟩: nodes with an a-target and b-target of equal value.
        nodes = evaluate_gxpath_nodes(g, DataNodeTest(Axis("a"), Axis("b"), True))
        # v: a->w (1), b->x (2): no.  u: no b-edge.  x: b->u only.
        assert nodes == frozenset()
        nodes_neq = evaluate_gxpath_nodes(g, DataNodeTest(Axis("a"), Axis("b"), False))
        assert nodes_neq == {"v"}

    def test_union(self, g):
        got = evaluate_gxpath(g, PathUnion(Axis("a"), Axis("b")))
        assert {("u", "v"), ("v", "x")} <= got

    def test_uses_data(self, g):
        assert uses_data(DataPathTest(Axis("a"), True))
        assert not uses_data(StarPath(Axis("a")))
