"""Tests for the Datalog AST, parser and evaluator."""

import pytest

from repro.errors import DatalogError, StratificationError, UnknownRelationError
from repro.datalog import (
    Atom,
    DConst,
    DVar,
    DatalogEvaluator,
    EqLit,
    Program,
    RelLit,
    Rule,
    SimLit,
    parse_program,
    run_program,
    stratify,
)
from repro.triplestore import Triplestore

CHAIN = Triplestore(
    [("a", "p", "b"), ("b", "p", "c"), ("c", "q", "d")],
    rho={"a": 1, "b": 1, "c": 2, "d": 2, "p": 0, "q": 0},
)


class TestAst:
    def test_arity_bounds(self):
        with pytest.raises(DatalogError):
            Atom("P", ())
        with pytest.raises(DatalogError):
            Atom("P", ("x", "y", "z", "w"))

    def test_unsafe_head_rejected(self):
        with pytest.raises(DatalogError):
            Rule(Atom("P", ("x", "y", "z")), (RelLit(Atom("E", ("x", "y", "y"))),))

    def test_unsafe_negation_rejected(self):
        with pytest.raises(DatalogError):
            Rule(
                Atom("P", ("x", "x", "x")),
                (
                    RelLit(Atom("E", ("x", "x", "x"))),
                    RelLit(Atom("F", ("x", "y", "y")), negated=True),
                ),
            )

    def test_constant_binding_counts_as_safe(self):
        rule = Rule(
            Atom("P", ("x", "y", "y")),
            (RelLit(Atom("E", ("x", "x", "y"))),),
        )
        assert rule.head.pred == "P"

    def test_program_predicates(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), Aux(x,y,z).\nAux(x,y,z) :- E(x,y,z).")
        assert p.idb_predicates() == {"Ans", "Aux"}
        assert p.edb_predicates() == {"E"}

    def test_program_size(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), x != y.")
        assert p.size() == 3


class TestParser:
    def test_full_syntax(self):
        text = """
        % comment
        S(x, y, z)   :- E(x, y, z).
        Ans(x, y, z) :- S(x, y, z), not F(x, y, z), ~(x, z), not ~(y, z),
                        x != z, y = 'c', x = 3.
        """
        p = parse_program(text)
        rule = p.rules_for("Ans")[0]
        kinds = [type(l).__name__ for l in rule.body]
        assert kinds == ["RelLit", "RelLit", "SimLit", "SimLit", "EqLit", "EqLit", "EqLit"]
        assert rule.body[1].negated and rule.body[3].negated and rule.body[4].negated

    def test_constants(self):
        p = parse_program("Ans(x, y, z) :- E(x, y, z), y = 'part of'.")
        lit = p.rules[0].body[1]
        assert lit.right == DConst("part of")

    def test_bad_syntax(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_program("Ans(x,y,z) :- E(x,y,z)")  # missing period
        with pytest.raises(ParseError):
            parse_program("Ans(x,y,z) : E(x,y,z).")


class TestEvaluation:
    def test_copy_rule(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z).")
        assert run_program(p, CHAIN) == CHAIN.relation("E")

    def test_permutation_rule(self):
        p = parse_program("Ans(z,y,x) :- E(x,y,z).")
        assert run_program(p, CHAIN) == {
            (o, p, s) for s, p, o in CHAIN.relation("E")
        }

    def test_join_rule(self):
        p = parse_program("Ans(x,y,w) :- E(x,y,z), E(z,u,w).")
        assert ("a", "p", "c") in run_program(p, CHAIN)

    def test_recursion_reachability(self):
        p = parse_program(
            """
            R(x,y,z) :- E(x,y,z).
            R(x,y,w) :- R(x,y,z), E(z,u,w).
            Ans(x,y,z) :- R(x,y,z).
            """
        )
        got = run_program(p, CHAIN)
        assert ("a", "p", "d") in got

    def test_negation_across_strata(self):
        p = parse_program(
            """
            Loop(x,y,z) :- E(x,y,z), E(z,u,x).
            Ans(x,y,z) :- E(x,y,z), not Loop(x,y,z).
            """
        )
        assert run_program(p, CHAIN) == CHAIN.relation("E")  # no loops here

    def test_sim_literal(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), ~(x, z).")
        got = run_program(p, CHAIN)
        assert got == {("a", "p", "b"), ("c", "q", "d")}

    def test_equality_with_constant(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), y = 'q'.")
        assert run_program(p, CHAIN) == {("c", "q", "d")}

    def test_inequality(self):
        p = parse_program("Ans(x,y,z) :- E(x,y,z), E(z,w,u), x != u.")
        assert run_program(p, CHAIN) == {("a", "p", "b"), ("b", "p", "c")}

    def test_negated_edb(self):
        p = parse_program("Ans(x,y,x) :- E(x,y,z), not E(z,y,x).")
        assert len(run_program(p, CHAIN)) == 3

    def test_stratification_error(self):
        p = parse_program(
            """
            P(x,y,z) :- E(x,y,z), not Q(x,y,z).
            Q(x,y,z) :- E(x,y,z), not P(x,y,z).
            Ans(x,y,z) :- P(x,y,z).
            """
        )
        with pytest.raises(StratificationError):
            run_program(p, CHAIN)

    def test_mutual_recursion_evaluates(self):
        p = parse_program(
            """
            P(x,y,z) :- E(x,y,z).
            P(x,y,z) :- Q(x,y,z).
            Q(x,y,w) :- P(x,y,z), E(z,u,w).
            Ans(x,y,z) :- P(x,y,z).
            """
        )
        got = run_program(p, CHAIN)
        assert ("a", "p", "d") in got

    def test_missing_answer_pred(self):
        p = parse_program("P(x,y,z) :- E(x,y,z).")
        with pytest.raises(DatalogError):
            run_program(p, CHAIN)

    def test_unknown_edb_relation(self):
        p = parse_program("Ans(x,y,z) :- Nope(x,y,z).")
        with pytest.raises(UnknownRelationError):
            run_program(p, CHAIN)

    def test_run_returns_all_idbs(self):
        p = parse_program("P(x,y,z) :- E(x,y,z).\nAns(x,y,z) :- P(x,y,z).")
        rels = DatalogEvaluator(CHAIN).run(p)
        assert set(rels) == {"P", "Ans"}

    def test_stratify_orders_dependencies_first(self):
        p = parse_program(
            """
            A(x,y,z) :- B(x,y,z).
            B(x,y,z) :- E(x,y,z).
            Ans(x,y,z) :- A(x,y,z).
            """
        )
        order = [c[0] for c in stratify(p)]
        assert order.index("B") < order.index("A") < order.index("Ans")
