"""The durable storage layer: segments, WAL, snapshots, catalog, CLI."""

from __future__ import annotations

import glob
import json
import os
import pickle

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.db import Database
from repro.errors import ReproError, StoreCorruptionError
from repro.rdf.datasets import figure1
from repro.storage import DurableStore, SegmentStore, WriteAheadLog, fsck_store
from repro.storage.catalog import load_plans, load_stats, save_catalog
from repro.storage.fsutil import atomic_write_bytes
from repro.storage.segments import (
    KIND_INT64,
    KIND_PICKLE,
    map_segment,
    open_store_segments,
    read_segment,
    verify_segment,
    write_segment,
    write_store_segments,
)
from repro.triplestore.columnar import ColumnarStore
from repro.triplestore.model import Triplestore
from repro.triplestore.io import dumps as io_dumps, loads as io_loads

TRIPLES = (("a", "p", "b"), ("b", "p", "c"), ("c", "q", "d"))
Q = "join[1,2,3'; 3=1'](E, E)"


def make_store():
    return Triplestore(TRIPLES, rho={"a": 1, "b": None, "p": "label"})


# --------------------------------------------------------------------- #
# Segment files
# --------------------------------------------------------------------- #


class TestSegmentFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.seg"
        payload = b"\x01\x02\x03\x04" * 10
        crc = write_segment(path, KIND_PICKLE, payload)
        assert read_segment(path, expect_kind=KIND_PICKLE) == payload
        assert verify_segment(path) == []
        assert isinstance(crc, int)
        assert not os.path.exists(str(path) + ".tmp")

    def test_int64_mmap_is_zero_copy_view(self, tmp_path):
        path = tmp_path / "a.seg"
        arr = np.arange(7, dtype=np.int64)
        write_segment(path, KIND_INT64, arr.tobytes())
        view, mapped = map_segment(path)
        assert view.tolist() == list(range(7))
        assert view.base is not None  # a view over the mapping, not a copy
        del view
        mapped.close()

    def test_empty_payload(self, tmp_path):
        path = tmp_path / "e.seg"
        write_segment(path, KIND_INT64, b"")
        view, mapped = map_segment(path)
        assert len(view) == 0
        del view
        mapped.close()

    def test_corrupt_payload_detected(self, tmp_path):
        path = tmp_path / "c.seg"
        write_segment(path, KIND_INT64, np.arange(8, dtype=np.int64).tobytes())
        with open(path, "r+b") as fp:
            fp.seek(40)
            fp.write(b"\xff")
        assert verify_segment(path)
        with pytest.raises(StoreCorruptionError):
            read_segment(path)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "t.seg"
        write_segment(path, KIND_INT64, np.arange(8, dtype=np.int64).tobytes())
        with open(path, "r+b") as fp:
            fp.truncate(40)
        with pytest.raises(StoreCorruptionError):
            map_segment(path)

    def test_bad_magic_detected(self, tmp_path):
        path = tmp_path / "m.seg"
        write_segment(path, KIND_INT64, b"")
        with open(path, "r+b") as fp:
            fp.write(b"NOTASEGM")
        with pytest.raises(StoreCorruptionError):
            read_segment(path)


class TestStoreSegments:
    def test_roundtrip_preserves_store(self, tmp_path):
        store = make_store().with_relation("R", ((("x", "y", "z"),)))
        block = write_store_segments(store, tmp_path / "gen")
        reopened = open_store_segments(tmp_path / "gen", block)
        assert isinstance(reopened, SegmentStore)
        assert reopened == store
        assert reopened.rho_map() == store.rho_map()
        assert reopened.relation_names == store.relation_names

    def test_figure1_roundtrip(self, tmp_path):
        store = figure1()
        block = write_store_segments(store, tmp_path / "gen")
        assert open_store_segments(tmp_path / "gen", block) == store

    def test_empty_store(self, tmp_path):
        store = Triplestore()
        block = write_store_segments(store, tmp_path / "gen")
        reopened = open_store_segments(tmp_path / "gen", block)
        assert reopened == store
        assert len(reopened) == 0

    def test_lazy_contains_and_len(self, tmp_path):
        store = make_store()
        block = write_store_segments(store, tmp_path / "gen")
        reopened = open_store_segments(tmp_path / "gen", block)
        # __len__ and __contains__ work off the arrays, no decode
        assert len(reopened) == len(TRIPLES)
        assert ("a", "p", "b") in reopened
        assert ("a", "p", "zzz") not in reopened
        assert reopened._relations["E"] is None  # still undecoded
        assert reopened.relation("E") == store.relation("E")

    def test_columnar_view_is_mapped(self, tmp_path):
        store = make_store()
        block = write_store_segments(store, tmp_path / "gen")
        reopened = open_store_segments(tmp_path / "gen", block)
        cs = reopened.columnar()
        assert isinstance(cs, ColumnarStore)
        assert not cs.relation_keys("E").flags.owndata  # mmap-backed view
        assert cs.relation_keys("E").tolist() == store.columnar().relation_keys(
            "E"
        ).tolist()

    def test_mutation_returns_plain_store(self, tmp_path):
        store = make_store()
        block = write_store_segments(store, tmp_path / "gen")
        reopened = open_store_segments(tmp_path / "gen", block)
        grown = reopened.with_relation("N", (("n", "m", "o"),))
        assert type(grown) is Triplestore
        assert grown.relation("N") == frozenset({("n", "m", "o")})


# --------------------------------------------------------------------- #
# WAL
# --------------------------------------------------------------------- #


class TestWal:
    def test_append_recover_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"E": TRIPLES})
        wal.append({"R": (("x", "y", "z"),)})
        wal.close()
        records = WriteAheadLog(tmp_path / "wal").recover()
        assert [seq for seq, _ in records] == [1, 2]
        assert records[0][1]["relations"]["E"] == TRIPLES

    def test_min_seq_filters_folded_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"E": TRIPLES})
        wal.append({"R": ()})
        wal.close()
        records = WriteAheadLog(tmp_path / "wal").recover(min_seq=1)
        assert [seq for seq, _ in records] == [2]

    def test_torn_tail_truncated(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"E": TRIPLES})
        wal.close()
        with open(wal.log_path, "ab") as fp:
            fp.write(b"torn-half-record")
        fresh = WriteAheadLog(tmp_path / "wal")
        assert [s for s, _ in fresh.recover()] == [1]
        assert os.path.getsize(fresh.log_path) == fresh.offset

    def test_corruption_inside_committed_region_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"E": TRIPLES})
        wal.close()
        with open(wal.log_path, "r+b") as fp:
            fp.seek(30)
            fp.write(b"\xff\xff")
        with pytest.raises(StoreCorruptionError):
            WriteAheadLog(tmp_path / "wal").recover()

    def test_durable_record_past_stale_pointer_promoted(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"E": TRIPLES})
        pointer = json.loads(open(wal.commit_path, "rb").read())
        wal.append({"R": ()})
        wal.close()
        # Roll the pointer back to simulate a crash between record fsync
        # and pointer replace: the second record must be promoted.
        atomic_write_bytes(wal.commit_path, json.dumps(pointer).encode())
        fresh = WriteAheadLog(tmp_path / "wal")
        assert [s for s, _ in fresh.recover()] == [1, 2]
        assert fresh.next_seq == 3

    def test_reset_preserves_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"E": TRIPLES})
        wal.append({"R": ()})
        wal.reset(2)
        assert wal.size == 0
        assert wal.append({"S": ()}) == 3
        wal.close()


# --------------------------------------------------------------------- #
# DurableStore manager
# --------------------------------------------------------------------- #


class TestDurableStore:
    def test_fresh_directory_initialised(self, tmp_path):
        ds = DurableStore(tmp_path / "s")
        store = ds.open()
        assert store == Triplestore()
        assert os.path.exists(ds.manifest_path)
        assert fsck_store(ds.root) == []
        ds.close()

    def test_wal_replay_on_open(self, tmp_path):
        ds = DurableStore(tmp_path / "s")
        ds.open()
        ds.commit({"E": TRIPLES})
        ds.close()
        ds2 = DurableStore(tmp_path / "s")
        store = ds2.open()
        assert store.relation("E") == frozenset(TRIPLES)
        assert ds2.rel_versions == {"E": 1}
        assert ds2.store_version == 1
        ds2.close()

    def test_snapshot_folds_and_sweeps(self, tmp_path):
        ds = DurableStore(tmp_path / "s")
        store = ds.open()
        ds.commit({"E": TRIPLES})
        store = store.with_relation("E", TRIPLES)
        ds.snapshot(store, {"E": 1}, 1)
        assert ds.wal.size == 0
        gens = glob.glob(str(tmp_path / "s" / "segments" / "gen-*"))
        assert len(gens) == 1  # the old generation was swept
        ds.close()
        ds2 = DurableStore(tmp_path / "s")
        reopened = ds2.open()
        assert isinstance(reopened, SegmentStore)
        assert reopened == store
        assert ds2.rel_versions == {"E": 1}
        ds2.close()

    def test_missing_segment_is_corruption(self, tmp_path):
        ds = DurableStore(tmp_path / "s")
        ds.open()
        ds.close()
        seg = glob.glob(str(tmp_path / "s" / "segments" / "gen-*" / "meta.seg"))[0]
        os.unlink(seg)
        with pytest.raises(StoreCorruptionError):
            DurableStore(tmp_path / "s").open()

    def test_bad_manifest_is_corruption(self, tmp_path):
        ds = DurableStore(tmp_path / "s")
        ds.open()
        ds.close()
        with open(ds.manifest_path, "w") as fp:
            fp.write("{not json")
        with pytest.raises(StoreCorruptionError):
            DurableStore(tmp_path / "s").open()


# --------------------------------------------------------------------- #
# Database integration
# --------------------------------------------------------------------- #


class TestDatabasePath:
    def test_batch_commit_and_reopen(self, tmp_path):
        db = Database(path=tmp_path / "s")
        with db.batch():
            db.install("E", TRIPLES)
        expected = db.query(Q).to_set()
        db.close()
        db2 = Database(path=tmp_path / "s")
        assert db2.query(Q).to_set() == expected
        assert isinstance(db2.store, SegmentStore)
        db2.close()

    def test_store_and_path_are_exclusive(self, tmp_path):
        with pytest.raises(ReproError):
            Database(Triplestore(), path=tmp_path / "s")
        with pytest.raises(ReproError):
            Database()

    def test_warm_plan_cache_hits_on_first_query(self, tmp_path):
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        db.query(Q).to_set()
        assert db.cache_info()["plans"].hits == 0
        db.close()
        db2 = Database(path=tmp_path / "s")
        db2.query(Q).to_set()
        assert db2.cache_info()["plans"].hits == 1
        db2.close()

    def test_warm_stats_on_reopen(self, tmp_path):
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        db.store.stats().relation("E")  # compute so close persists it
        db.close()
        db2 = Database(path=tmp_path / "s")
        computed = db2.store.stats().computed()
        assert computed["E"].cardinality == len(TRIPLES)
        db2.close()

    def test_mutation_invalidates_persisted_plans(self, tmp_path):
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        db.query(Q).to_set()
        db.close()
        db2 = Database(path=tmp_path / "s")
        db2.install("E", TRIPLES + (("d", "p", "e"),))
        db2.query(Q).to_set()
        assert db2.cache_info()["plans"].hits == 0  # token aged out
        assert ("c", "p", "e") not in db2.query(Q).to_set()
        db2.close()

    def test_all_backends_serve_from_segments(self, tmp_path):
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        expected = db.query(Q).to_set()
        db.close()
        for backend in ("set", "columnar", "sharded"):
            db2 = Database(path=tmp_path / "s", backend=backend)
            assert db2.query(Q).to_set() == expected, backend
            db2.close()

    def test_open_classmethod_detects_directories(self, tmp_path):
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        db.close()
        db2 = Database.open(str(tmp_path / "s"))
        assert db2._storage is not None
        assert db2.query(Q).to_set()
        db2.close()

    def test_auto_compaction_on_wal_limit(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE_WAL_LIMIT", "64")
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        db.install("R", (("x", "y", "z"),))
        assert db._storage.wal.size == 0  # folded automatically
        assert db._storage.generation > 1
        db.close()

    def test_close_is_idempotent(self, tmp_path):
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        db.close()
        db.close()  # second close is a no-op
        # still queryable afterwards, and durable commits still work
        db.install("R", (("x", "y", "z"),))
        db.close()
        db2 = Database(path=tmp_path / "s")
        assert "R" in db2.store.relation_names
        db2.close()

    def test_close_after_failed_open_is_noop(self, tmp_path):
        store_file = tmp_path / "s"
        db = Database(path=store_file)
        db.close()
        # Engine/backend contradiction raises *after* the durable open;
        # __del__ then closes the partially-constructed object.
        with pytest.raises(ReproError):
            Database(path=store_file, backend="nope")
        # The store stays healthy and reopenable.
        assert fsck_store(str(store_file)) == []
        db2 = Database(path=store_file)
        db2.close()


# --------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------- #


class TestCatalog:
    def test_corrupt_catalog_is_ignored_at_open(self, tmp_path):
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        db.query(Q).to_set()
        db.close()
        for name in ("stats.json", "plans.bin"):
            with open(tmp_path / "s" / "catalog" / name, "wb") as fp:
                fp.write(b"\x00garbage")
        findings = fsck_store(tmp_path / "s")
        assert {f.rule for f in findings} == {"STOR-CATALOG"}
        db2 = Database(path=tmp_path / "s")  # opens cold, not an error
        assert db2.cache_info()["plans"].size == 0
        assert db2.query(Q).to_set()
        db2.close()

    def test_other_backend_plans_survive_a_close(self, tmp_path):
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        db.query(Q).to_set()
        db.close()
        dbc = Database(path=tmp_path / "s", backend="columnar")
        dbc.query(Q).to_set()
        dbc.close()
        dbs = Database(path=tmp_path / "s")
        dbs.query(Q).to_set()
        assert dbs.cache_info()["plans"].hits == 1
        dbs.close()

    def test_stale_plan_format_ignored(self, tmp_path):
        db = Database(path=tmp_path / "s")
        db.install("E", TRIPLES)
        db.query(Q).to_set()
        db.close()
        plans = tmp_path / "s" / "catalog" / "plans.bin"
        doc = pickle.loads(plans.read_bytes())
        doc["format"] = 999
        atomic_write_bytes(plans, pickle.dumps(doc))
        db2 = Database(path=tmp_path / "s")
        assert load_plans(tmp_path / "s", db2) == 0
        db2.close()


# --------------------------------------------------------------------- #
# fsck + CLI
# --------------------------------------------------------------------- #


@pytest.fixture()
def durable_store(tmp_path):
    root = tmp_path / "store"
    db = Database(path=root)
    db.install("E", TRIPLES)
    db.close()
    return str(root)


class TestFsckCli:
    def test_fsck_healthy_exit_zero(self, durable_store, capsys):
        assert cli_main(["fsck", durable_store]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_fsck_corrupt_exit_nonzero_with_report(self, durable_store, capsys):
        seg = glob.glob(os.path.join(durable_store, "segments", "gen-*", "rel-*.seg"))[0]
        with open(seg, "r+b") as fp:
            fp.seek(36)
            fp.write(b"\xde\xad")
        assert cli_main(["fsck", durable_store]) == 1
        assert "STOR-SEGMENT" in capsys.readouterr().out

    def test_fsck_json_is_structured(self, durable_store, capsys):
        seg = glob.glob(os.path.join(durable_store, "segments", "gen-*", "rel-*.seg"))[0]
        with open(seg, "r+b") as fp:
            fp.seek(36)
            fp.write(b"\xde\xad")
        assert cli_main(["fsck", durable_store, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report and report[0]["rule"] == "STOR-SEGMENT"
        assert report[0]["path"].endswith(".seg")

    def test_fsck_non_store_directory(self, tmp_path, capsys):
        assert cli_main(["fsck", str(tmp_path)]) == 1
        assert "STOR-MANIFEST" in capsys.readouterr().out

    def test_compact_subcommand(self, durable_store):
        db = Database(path=durable_store)
        db.install("R", (("x", "y", "z"),))
        db.close()
        assert cli_main(["compact", durable_store]) == 0
        assert cli_main(["fsck", durable_store]) == 0

    def test_info_reads_durable_directories(self, durable_store, capsys):
        assert cli_main(["info", durable_store]) == 0
        assert "triples:   3" in capsys.readouterr().out


class TestDumpCli:
    def test_dump_roundtrips_through_io_format(self, durable_store, capsys):
        assert cli_main(["dump", durable_store]) == 0
        text = capsys.readouterr().out
        reloaded = io_loads(text)
        db = Database(path=durable_store)
        assert reloaded == db.store
        db.close()

    def test_dump_to_file_and_back(self, durable_store, tmp_path, capsys):
        out = tmp_path / "export.tstore"
        assert cli_main(["dump", durable_store, "-o", str(out)]) == 0
        reloaded = io_loads(out.read_text())
        assert reloaded.relation("E") == frozenset(TRIPLES)

    def test_dump_reads_text_stores_too(self, tmp_path, capsys):
        src = tmp_path / "plain.tstore"
        src.write_text(io_dumps(make_store()))
        assert cli_main(["dump", str(src)]) == 0
        # The text format drops None-valued rho entries, so compare
        # against the io-normalized form of the same store.
        assert io_loads(capsys.readouterr().out) == io_loads(io_dumps(make_store()))


class TestServeStorePath:
    def test_serve_requires_some_store(self, capsys):
        assert cli_main(["serve"]) == 1
        assert "store" in capsys.readouterr().err

    def test_store_path_env_names_default_tenant(self, durable_store, monkeypatch):
        import argparse

        from repro.cli import _serve_tenants

        monkeypatch.setenv("REPRO_STORE_PATH", durable_store)
        args = argparse.Namespace(
            store=None, store_path=None, tenant=None, backend=None,
            shards=None, executor=None, workers=None,
        )
        tenants = _serve_tenants(args)
        try:
            assert tenants["default"].query(Q).to_set()
        finally:
            for db in tenants.values():
                db.close()
