"""Plan-verifier tests (:mod:`repro.analysis.verify`).

Two halves, mirroring the subsystem's promise:

* **zero false positives** — every plan the compiler produces, across
  backends and the diffcheck expression generators, verifies clean;
* **mutation corpus** — a seeded corpus of hand-broken plans (swapped
  key positions, dropped repartitions, phantom parameters, …) is
  rejected, each with the *expected* invariant ID, so a regression in
  one check cannot hide behind another.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import verify_compiled, verify_plan
from repro.analysis.verify import assert_plan_valid
from repro.core.conditions import Cond
from repro.core.expressions import Join, Rel, Select, Star
from repro.core.optimizer import optimize
from repro.core.params import canonicalize_constants, expr_params
from repro.core.plan import (
    FilterOp,
    HashJoinOp,
    ReachStarOp,
    ScanOp,
    StarOp,
    compile_plan,
    plan_verify_enabled,
)
from repro.core.positions import Const, Param, Pos
from repro.errors import PlanVerificationError
from repro.service.protocol import status_for
from repro.triplestore.model import Triplestore

from tests.conftest import expressions
from tests.diffcheck import random_expression, random_triplestore

# One lowering configuration per backend the executors support; the
# sharded entries cover both the default partition position and a
# non-default one (position 3 of the triple).
BACKEND_CONFIGS = (
    {"backend": "set"},
    {"backend": "columnar"},
    {"backend": "columnar", "max_matrix_objects": 4},
    {"backend": "sharded", "shard_key_pos": 0},
    {"backend": "sharded", "shard_key_pos": 2},
)


@pytest.fixture()
def store() -> Triplestore:
    return Triplestore({"R": {(1, 2, 3), (3, 4, 5), (5, 6, 7)}, "S": {(1, 1, 1)}})


def ids(violations) -> list:
    return sorted({v.invariant for v in violations})


# --------------------------------------------------------------------- #
# Zero false positives
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(25))
def test_generated_plans_verify_clean(seed):
    """Diffcheck-generator plans verify clean on every backend config."""
    rng = random.Random(seed)
    gen_store = random_triplestore(rng)
    expr = random_expression(rng, max_depth=3)
    stats = gen_store.stats()
    for source in (expr, optimize(expr)):
        for use_reach in (True, False):
            for config in BACKEND_CONFIGS:
                plan = compile_plan(
                    source, gen_store, use_reach=use_reach, **config
                )
                violations = verify_plan(
                    plan,
                    expr=source,
                    stats=stats,
                    **config,
                )
                assert violations == (), "\n".join(map(str, violations))


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(expr=expressions())
def test_hypothesis_plans_verify_clean(store, expr):
    stats = store.stats()
    for config in BACKEND_CONFIGS:
        plan = compile_plan(optimize(expr), store, **config)
        assert verify_plan(plan, expr=optimize(expr), stats=stats, **config) == ()


def test_parameterized_plans_verify_clean(store):
    """Canonicalised (prepared-statement) plans verify with ``params=``."""
    expr = Select(
        Rel("R"), (Cond(Pos(0), Const(1), "=", False),)
    )
    canon, bindings = canonicalize_constants(expr)
    plan = compile_plan(canon, store)
    names = expr_params(canon)
    assert set(names) == set(bindings)
    assert verify_plan(plan, expr=canon, params=names) == ()
    # verify_compiled derives the same verdict from an engine-free call.
    assert verify_compiled(canon, plan, store=store, params=names) == ()


# --------------------------------------------------------------------- #
# The mutation corpus
# --------------------------------------------------------------------- #

JOIN = Join(Rel("R"), Rel("S"), (0, 1, 5), (Cond(Pos(2), Pos(3), "=", False),))
SELECT2 = Select(
    Rel("R"),
    (Cond(Pos(0), Const(1), "=", False), Cond(Pos(1), Const(2), "=", False)),
)
STAR = Star(Rel("R"), (0, 1, 5), (Cond(Pos(2), Pos(3), "=", False),), "right")
REACH = Star(Rel("R"), "1,2,3'", "3=1'")
NEQ = Select(Rel("R"), (Cond(Pos(0), Pos(1), "!=", False),))


def _first(plan, op_type):
    return next(op for op in plan.walk() if isinstance(op, op_type))


def _mutate_out_spec(plan):
    plan.spec.out = (0, 1, 7)


def _mutate_swap_cross_eq(plan):
    c = plan.spec.cross_eq[0]
    plan.spec.cross_eq = (Cond(c.right, c.left, c.op, c.on_data),)


def _mutate_reverse_positions(plan):
    plan.positions = tuple(reversed(plan.positions))


def _mutate_index_positions(plan):
    plan.index_positions = (1,)


def _mutate_ghost_key_param(plan):
    plan.key = (Param("ghost"), plan.key[1])


def _mutate_phantom_filter_param(plan):
    f = _first(plan, FilterOp)
    f.conditions = f.conditions + (Cond(Pos(0), Param("phantom"), "=", False),)


def _mutate_flip_strategy(plan):
    plan.shard_strategy = (
        "co-partitioned" if plan.shard_strategy != "co-partitioned" else "broadcast"
    )


def _mutate_drop_strategy(plan):
    plan.shard_strategy = None


def _mutate_star_dense(plan):
    _first(plan, StarOp).vector_strategy = "dense"


def _mutate_reach_unlowered(plan):
    _first(plan, ReachStarOp).vector_strategy = None


def _mutate_zombie_scan(plan):
    _first(plan, ScanOp).name = "Zombie"


def _mutate_negative_cost(plan):
    plan.est_cost = -1.0


# (name, source expression, backend, use_reach, mutate, expected ID).
# Each entry models a distinct compiler/rewriter bug class; the corpus
# intentionally exceeds the ten-mutation acceptance floor.
MUTATIONS = (
    ("out-spec-range", JOIN, "sharded", True, _mutate_out_spec, "PLAN-ARITY"),
    ("cross-eq-swapped", JOIN, "sharded", True, _mutate_swap_cross_eq, "PLAN-ARITY"),
    ("index-positions-reversed", SELECT2, "columnar", True,
     _mutate_reverse_positions, "PLAN-KEY"),
    ("join-index-tampered", JOIN, "sharded", True,
     _mutate_index_positions, "PLAN-KEY"),
    ("ghost-key-param", SELECT2, "columnar", True,
     _mutate_ghost_key_param, "PLAN-PARAM"),
    ("phantom-filter-param", NEQ, "set", True,
     _mutate_phantom_filter_param, "PLAN-PARAM"),
    ("shard-strategy-flipped", JOIN, "sharded", True,
     _mutate_flip_strategy, "PLAN-SHARD"),
    ("shard-strategy-dropped", JOIN, "sharded", True,
     _mutate_drop_strategy, "PLAN-SHARD"),
    ("star-forced-dense", STAR, "columnar", False,
     _mutate_star_dense, "PLAN-DENSE"),
    ("reach-star-unlowered", REACH, "columnar", True,
     _mutate_reach_unlowered, "PLAN-DENSE"),
    ("zombie-scan", JOIN, "set", True, _mutate_zombie_scan, "PLAN-CACHE"),
    ("negative-cost", JOIN, "set", True, _mutate_negative_cost, "PLAN-COST"),
)


@pytest.mark.parametrize(
    "name, expr, backend, use_reach, mutate, expected",
    MUTATIONS,
    ids=[m[0] for m in MUTATIONS],
)
def test_mutated_plan_rejected(store, name, expr, backend, use_reach, mutate,
                               expected):
    stats = store.stats()
    plan = compile_plan(expr, store, backend=backend, use_reach=use_reach)
    assert verify_plan(plan, backend=backend, expr=expr, stats=stats) == ()
    mutate(plan)
    violations = verify_plan(plan, backend=backend, expr=expr, stats=stats)
    assert expected in ids(violations), (
        f"{name}: expected {expected}, got {ids(violations)}"
    )


def test_assert_plan_valid_raises_with_violations(store):
    plan = compile_plan(JOIN, store)
    plan.est_cost = -1.0
    with pytest.raises(PlanVerificationError) as err:
        assert_plan_valid(plan, expr=JOIN)
    assert "PLAN-COST" in str(err.value)
    assert any(v.invariant == "PLAN-COST" for v in err.value.violations)


def test_distinct_invariants_covered():
    """The corpus exercises every plan invariant at least once."""
    assert {m[5] for m in MUTATIONS} == {
        "PLAN-ARITY", "PLAN-KEY", "PLAN-PARAM", "PLAN-SHARD",
        "PLAN-DENSE", "PLAN-CACHE", "PLAN-COST",
    }
    assert len(MUTATIONS) >= 10


# --------------------------------------------------------------------- #
# Wiring: the compile-time gate, the wire status, the runtime check
# --------------------------------------------------------------------- #


def test_plan_verify_env_gate(monkeypatch):
    for off in ("", "0", "false", "off", "no"):
        monkeypatch.setenv("REPRO_PLAN_VERIFY", off)
        assert not plan_verify_enabled()
    for on in ("1", "true", "yes", "anything"):
        monkeypatch.setenv("REPRO_PLAN_VERIFY", on)
        assert plan_verify_enabled()
    monkeypatch.delenv("REPRO_PLAN_VERIFY")
    assert not plan_verify_enabled()


def test_compile_plan_calls_verifier_when_enabled(store, monkeypatch):
    """The compile hook fires exactly when the env gate is on."""
    import repro.analysis.verify as verify_mod

    calls = []
    real = verify_mod.assert_plan_valid

    def spy(plan, **kwargs):
        calls.append(kwargs["backend"])
        return real(plan, **kwargs)

    monkeypatch.setattr(verify_mod, "assert_plan_valid", spy)
    monkeypatch.setenv("REPRO_PLAN_VERIFY", "0")
    compile_plan(JOIN, store)
    assert calls == []
    monkeypatch.setenv("REPRO_PLAN_VERIFY", "1")
    compile_plan(JOIN, store, backend="columnar")
    assert calls == ["columnar"]


def test_plan_verification_error_status():
    assert status_for(PlanVerificationError("broken", ())) == 400


def test_runtime_partition_check(store):
    """A stale partition claim is caught at execution time."""
    from repro.core.engines.sharded import ShardedExecContext, ShardedKeys

    ctx = ShardedExecContext(store, shards=3, key_pos=0)
    assert ctx._verify  # conftest sets REPRO_PLAN_VERIFY=1
    good = ShardedKeys(list(ctx.ss.relation_shards("R")), 0)
    assert ctx._check_partition(good, "set-op") is good
    # The same shards claiming a partition on position 2: rows in shard
    # s are hashed on position 0, so the claim is a lie.
    bad = ShardedKeys(list(ctx.ss.relation_shards("R")), 1)
    with pytest.raises(PlanVerificationError, match="PLAN-SHARD"):
        ctx._check_partition(bad, "set-op")


def test_runtime_partition_check_disabled(store, monkeypatch):
    from repro.core.engines.sharded import ShardedExecContext, ShardedKeys

    monkeypatch.setenv("REPRO_PLAN_VERIFY", "0")
    ctx = ShardedExecContext(store, shards=3, key_pos=0)
    bad = ShardedKeys(list(ctx.ss.relation_shards("R")), 1)
    assert ctx._check_partition(bad, "set-op") is bad


# --------------------------------------------------------------------- #
# verify_compiled: engine-derived configuration
# --------------------------------------------------------------------- #


def test_verify_compiled_derives_engine_config(store):
    from repro.core.engines.sharded import ShardedEngine
    from repro.core.engines.vectorized import VectorEngine

    for engine in (None, VectorEngine(), ShardedEngine(shards=3)):
        backend = getattr(engine, "backend", None) or "set"
        plan = compile_plan(
            JOIN,
            store,
            backend=backend,
            shard_key_pos=getattr(engine, "key_pos", 0),
        )
        assert verify_compiled(JOIN, plan, store=store, engine=engine) == ()


def test_explain_report_carries_verified_flag(store):
    from repro.api import explain_report

    report = explain_report(Rel("R"), store=store)
    assert report.verified is True
    assert report.to_dict()["verified"] is True
