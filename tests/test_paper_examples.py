"""Every worked example of the paper, reproduced exactly (E1, E4–E6, E16)."""

import pytest

from repro.core import (
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    R,
    evaluate,
    example2_expr,
    example2_extended,
    example3_left,
    example3_right,
    join,
    project13,
    query_q,
    reach_down,
    reach_forward,
    star,
)
from repro.rdf.datasets import (
    EXAMPLE2_EXPECTED,
    EXAMPLE2_PRIME_EXTRA,
    EXAMPLE3_LEFT_EXPECTED,
    EXAMPLE3_RIGHT_EXPECTED,
    QUERY_Q_CITY_PAIRS,
    QUERY_Q_EXPECTED_PAIRS,
    QUERY_Q_NEGATIVE_PAIR,
    example3_store,
    figure1,
    social_network,
)
from repro.triplestore import Triplestore

ENGINES = [HashJoinEngine(), NaiveEngine(), FastEngine()]


@pytest.fixture(params=ENGINES, ids=lambda e: type(e).__name__)
def engine(request):
    return request.param


class TestExample2:
    """e = E ✶^{1,3',3}_{2=1'} E on Figure 1."""

    def test_result_table(self, engine):
        got = evaluate(example2_expr(), figure1(), engine)
        assert got == EXAMPLE2_EXPECTED

    def test_extended_adds_natexpress_route(self, engine):
        got = evaluate(example2_extended(), figure1(), engine)
        assert got == EXAMPLE2_EXPECTED | {EXAMPLE2_PRIME_EXTRA}


class TestExample3:
    """Left and right Kleene closures genuinely differ."""

    def test_right_closure(self, engine):
        got = evaluate(example3_right(), example3_store(), engine)
        assert got == EXAMPLE3_RIGHT_EXPECTED

    def test_left_closure(self, engine):
        got = evaluate(example3_left(), example3_store(), engine)
        assert got == EXAMPLE3_LEFT_EXPECTED

    def test_paper_difference(self):
        """The paper: right gives E ∪ {(a,b,d),(a,b,e)}, left E ∪ {(a,b,d)}."""
        right = evaluate(example3_right(), example3_store())
        left = evaluate(example3_left(), example3_store())
        assert right - left == {("a", "b", "e")}


class TestExample4:
    def test_reach_forward_shape(self, engine):
        t = Triplestore([("x", "m1", "y"), ("y", "m2", "z")])
        got = evaluate(reach_forward(), t, engine)
        assert ("x", "m1", "z") in got

    def test_reach_down_shape(self, engine):
        # Reach⤓: (✶^{1',2',3}_{1=2'} E)* — each step's subject is the
        # accumulated triple's predicate.
        t = Triplestore([("b", "m", "z"), ("a", "b", "c")])
        got = evaluate(reach_down(), t, engine)
        assert ("a", "b", "z") in got  # (a,b,c) with (b,m,z): 1=2' joins b

    def test_query_q_structure(self):
        q = query_q()
        # ((E ✶^{1,3',3}_{2=1'})* ✶^{1,2,3'}_{3=1',2=2'})*
        assert q.side == "right"
        inner = q.expr
        assert inner.out == (0, 5, 2)


class TestQueryQ:
    def test_city_pairs(self, engine):
        pairs = project13(evaluate(query_q(), figure1(), engine))
        assert QUERY_Q_CITY_PAIRS <= pairs

    def test_full_answer(self, engine):
        pairs = project13(evaluate(query_q(), figure1(), engine))
        assert pairs == QUERY_Q_EXPECTED_PAIRS

    def test_st_andrews_brussels_not_in_q(self, engine):
        """The paper's negative example: the route needs two companies."""
        pairs = project13(evaluate(query_q(), figure1(), engine))
        assert QUERY_Q_NEGATIVE_PAIR not in pairs

    def test_edinburgh_london_via_eastcoast(self, engine):
        result = evaluate(query_q(), figure1(), engine)
        witnesses = {p for s, p, o in result if (s, o) == ("Edinburgh", "London")}
        # Both the direct operator and (recursively) its parents witness it.
        assert "Train Op 1" in witnesses
        assert "NatExpress" in witnesses

    def test_st_andrews_london_needs_transitivity(self, engine):
        """(St Andrews, London) holds only through NatExpress ⊇ EastCoast."""
        result = evaluate(query_q(), figure1(), engine)
        witnesses = {p for s, p, o in result if (s, o) == ("St. Andrews", "London")}
        assert witnesses == {"NatExpress"}


class TestSocialNetwork:
    """Section 2.3's network with quintuple data values (E16)."""

    def test_rho_quintuples(self):
        t = social_network()
        assert t.rho("o175") == ("Mario", "m@nes.com", 23, None, None)
        assert t.rho("c163")[3] == "rival"

    def test_connection_triples(self):
        t = social_network()
        assert ("o175", "c137", "o7521") in t.relation("E")

    def test_same_creation_date_join(self, engine):
        """Find pairs of connections created the same day via an η-join.

        c177 and c163 share created = 12-07-89 (their full quintuples
        differ only in type... they do differ, so we compare ρ equality
        on the whole value: only each with itself).
        """
        t = social_network()
        e = join(R("E"), R("E"), "2,1,2'", "rho(2)=rho(2')")
        got = evaluate(e, t, engine)
        middles = {(s, o) for s, _, o in got}
        # Whole-quintuple equality: each connection only matches itself.
        assert middles == {("c163", "c163"), ("c137", "c137"), ("c177", "c177")}

    def test_friend_of_friend_reachability(self, engine):
        """Mario reaches Donkey Kong both directly and via Luigi."""
        t = social_network()
        got = project13(evaluate(star(R("E"), "1,2,3'", "3=1'"), t, engine))
        assert ("o175", "o122") in got
