"""Fault injection behind the service: worker death, deadlines, overload.

The promise under test: *failures cross the wire as structured, typed
errors, and the server keeps serving afterwards*.  Worker faults reuse
the procpool test hooks (``ShardedEngine.fault`` forwards a
die-at-dispatch / die-in-collective instruction to the worker pool, see
``tests/test_procpool.py``), injected into a live process-sharded
tenant behind a running server.  Timeouts are exercised at both layers:
the shard deadline (``REPRO_SHARD_TIMEOUT`` machinery) and the server's
own per-query budget.  Admission control is driven to both rejection
reasons with a deliberately tiny server.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import pytest

from repro.core.engines import procpool
from repro.core.engines.sharded import ShardedEngine
from repro.core.parser import parse
from repro.db import Database
from repro.errors import RemoteError
from repro.service import QueryServer, ServiceClient, ServiceConfig
from repro.service.metrics import parse_exposition
from repro.workloads.generators import random_store

#: Same family as the procpool suite: big enough to dispatch to workers.
STORE = random_store(60, 4000, n_relations=2, data_values=range(6), seed=3)

JOIN = "join[1,3',3; 2=1'](E0, E1)"


def _pool_or_skip():
    pool = procpool.get_pool(2)
    if pool is None:  # pragma: no cover — spawn-hostile sandboxes
        pytest.skip("cannot spawn worker processes here")
    return pool


def _expected_rows(query: str) -> set:
    engine = ShardedEngine(shards=4, executor="thread")
    return set(engine.evaluate(parse(query), STORE))


@pytest.fixture()
def proc_server():
    """A server over one process-sharded tenant, caches off.

    ``cache_size=0`` so every request really dispatches to the worker
    pool — a cached result would dodge the injected fault.
    ``dispatch_min=0`` forces the process path regardless of store size.
    """
    _pool_or_skip()
    engine = ShardedEngine(
        shards=4, executor="process", workers=2, dispatch_min=0
    )
    db = Database(STORE, engine, cache_size=0)
    config = ServiceConfig(port=0, max_inflight=4, query_timeout=None)
    with QueryServer(db, config) as srv:
        yield srv


def test_worker_killed_once_is_transparent(proc_server):
    """A worker dying once (at dispatch or inside a collective) is
    restarted and retried — the client sees only the correct rows."""
    engine = proc_server.pool.session("default").db.engine
    expected = _expected_rows(JOIN)
    with ServiceClient(proc_server.url) as client:
        for when in ("start", "collective"):
            marker = tempfile.mktemp(prefix="repro-svc-die-once-")
            engine.fault = {"rank": 1, "when": when, "marker": marker}
            try:
                body = client.query(JOIN)
            finally:
                engine.fault = None
            assert {tuple(r) for r in body["rows"]} == expected, when
            os.unlink(marker)


def test_worker_killed_always_is_structured_503(proc_server):
    """Persistent worker death exhausts the retry and reaches the client
    as a typed ShardWorkerError over HTTP 503 — and the very next
    request on the same server succeeds."""
    engine = proc_server.pool.session("default").db.engine
    with ServiceClient(proc_server.url) as client:
        engine.fault = {"rank": 0, "when": "start"}
        try:
            with pytest.raises(RemoteError) as excinfo:
                client.query(JOIN)
        finally:
            engine.fault = None
        assert excinfo.value.remote_type == "ShardWorkerError"
        assert excinfo.value.status == 503
        assert "attempt" in str(excinfo.value)
        # The server (and its worker pool) keeps serving.
        body = client.query(JOIN)
        assert {tuple(r) for r in body["rows"]} == _expected_rows(JOIN)
        series = parse_exposition(client.metrics())
        key = (
            'repro_queries_total{tenant="default",lang="trial",'
            'status="worker_error"}'
        )
        assert series[key] == 1


def test_worker_fault_over_websocket_keeps_connection_usable(proc_server):
    """A worker crash mid-stream answers with a structured error message
    on the socket; the transport (and server) survive it."""
    engine = proc_server.pool.session("default").db.engine
    with ServiceClient(proc_server.url) as client:
        engine.fault = {"rank": 0, "when": "start"}
        try:
            with pytest.raises(RemoteError) as excinfo:
                list(client.stream(JOIN))
        finally:
            engine.fault = None
        assert excinfo.value.remote_type == "ShardWorkerError"
        pages = list(client.stream(JOIN, page_size=512))
        assert pages[-1]["done"] and pages[-1]["total"] == len(
            _expected_rows(JOIN)
        )


def test_shard_deadline_is_structured_503(proc_server):
    """An expired shard deadline (the REPRO_SHARD_TIMEOUT machinery the
    service budget maps onto) aborts the workers and reaches the client
    typed, without a retry."""
    engine = proc_server.pool.session("default").db.engine
    with ServiceClient(proc_server.url) as client:
        engine.query_timeout = 0.0
        try:
            with pytest.raises(RemoteError) as excinfo:
                client.query("star[1,2,3'; 3=1'](E0)")
        finally:
            engine.query_timeout = None
        assert excinfo.value.remote_type == "ShardWorkerError"
        assert excinfo.value.status == 503
        assert "deadline" in str(excinfo.value)
        assert client.health()["status"] == "ok"


class _Gate:
    """Swap a tenant's ``db.query`` for one that blocks on an event."""

    def __init__(self, db):
        self.db = db
        self.release = threading.Event()
        self.entered = threading.Event()
        self._original = db.query

    def __enter__(self):
        def gated(query, lang="trial", **bindings):
            self.entered.set()
            self.release.wait(timeout=60.0)
            return self._original(query, lang=lang, **bindings)

        self.db.query = gated
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release.set()
        self.db.query = self._original
        return False


def test_server_budget_times_out_as_504():
    """The server-side per-query budget answers 504 on expiry, on any
    backend, while the stuck worker drains in the background."""
    db = Database(random_store(20, 200, seed=4))
    config = ServiceConfig(port=0, query_timeout=0.2)
    with QueryServer(db, config) as srv:
        with _Gate(db) as gate, ServiceClient(srv.url) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.query("E")
            assert excinfo.value.remote_type == "QueryTimeoutError"
            assert excinfo.value.status == 504
            assert gate.entered.is_set()
        # Budget released and query path restored: normal service.
        with ServiceClient(srv.url) as client:
            assert client.query("E")["total"] == len(db.store)
            series = parse_exposition(client.metrics())
            key = (
                'repro_queries_total{tenant="default",lang="trial",'
                'status="timeout"}'
            )
            assert series[key] == 1


def test_admission_queue_full_is_429():
    """One slot, no queue: a concurrent second query is refused with a
    structured 429 naming the reason."""
    db = Database(random_store(20, 200, seed=4))
    config = ServiceConfig(
        port=0, max_inflight=1, queue_depth=0, query_timeout=None
    )
    with QueryServer(db, config) as srv:
        with _Gate(db) as gate:
            holder_error: list = []

            def hold():
                try:
                    with ServiceClient(srv.url) as c:
                        c.query("E")
                except BaseException as exc:
                    holder_error.append(repr(exc))

            holder = threading.Thread(target=hold, daemon=True)
            holder.start()
            assert gate.entered.wait(timeout=10.0)
            with ServiceClient(srv.url) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.query("E")
            assert excinfo.value.remote_type == "AdmissionRejectedError"
            assert excinfo.value.status == 429
            assert excinfo.value.payload["reason"] == "queue_full"
            gate.release.set()
            holder.join(timeout=30.0)
            assert not holder.is_alive() and not holder_error
        with ServiceClient(srv.url) as client:
            series = parse_exposition(client.metrics())
            assert series[
                'repro_admission_rejections_total{reason="queue_full"}'
            ] == 1


def test_admission_queue_timeout_is_429():
    """One slot, one queue seat, tiny patience: the queued query is
    rejected with reason=queue_timeout when the slot never frees."""
    db = Database(random_store(20, 200, seed=4))
    config = ServiceConfig(
        port=0,
        max_inflight=1,
        queue_depth=1,
        queue_timeout=0.2,
        query_timeout=None,
    )
    with QueryServer(db, config) as srv:
        with _Gate(db) as gate:
            def hold():
                with ServiceClient(srv.url) as c:
                    c.query("E")

            holder = threading.Thread(target=hold, daemon=True)
            holder.start()
            assert gate.entered.wait(timeout=10.0)
            with ServiceClient(srv.url) as client:
                started = time.monotonic()
                with pytest.raises(RemoteError) as excinfo:
                    client.query("E")
                waited = time.monotonic() - started
            assert excinfo.value.remote_type == "AdmissionRejectedError"
            assert excinfo.value.payload["reason"] == "queue_timeout"
            assert waited >= 0.2
            gate.release.set()
            holder.join(timeout=30.0)
        with ServiceClient(srv.url) as client:
            series = parse_exposition(client.metrics())
            assert series[
                'repro_admission_rejections_total{reason="queue_timeout"}'
            ] == 1
            assert series["repro_admission_inflight"] == 0
            assert series["repro_admission_queued"] == 0
