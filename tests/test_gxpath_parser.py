"""Tests for the GXPath text syntax."""

import pytest

from repro.errors import ParseError
from repro.graphdb import GraphDB, evaluate_gxpath, evaluate_gxpath_nodes
from repro.graphdb.gxpath import (
    Axis,
    Concat,
    DataNodeTest,
    DataPathTest,
    Eps,
    HasPath,
    NodeAnd,
    NodeNot,
    NodeOr,
    PathComplement,
    PathUnion,
    StarPath,
    Test,
    Top,
)
from repro.graphdb.gxpath_parser import parse_gxpath, parse_gxpath_node


class TestPathSyntax:
    def test_axis(self):
        assert parse_gxpath("a") == Axis("a", True)
        assert parse_gxpath("a-") == Axis("a", False)
        assert parse_gxpath("'part of'") == Axis("part of", True)

    def test_eps(self):
        assert parse_gxpath("_") == Eps()

    def test_concat_union_precedence(self):
        # '/' binds tighter than '|'.
        assert parse_gxpath("a/b | c") == PathUnion(
            Concat(Axis("a", True), Axis("b", True)), Axis("c", True)
        )

    def test_star_and_data_tests(self):
        assert parse_gxpath("a*") == StarPath(Axis("a", True))
        assert parse_gxpath("a{=}") == DataPathTest(Axis("a", True), True)
        assert parse_gxpath("(a/b){!=}") == DataPathTest(
            Concat(Axis("a", True), Axis("b", True)), False
        )

    def test_complement(self):
        assert parse_gxpath("!a") == PathComplement(Axis("a", True))
        assert parse_gxpath("!(a|b)*") == StarPath(
            PathComplement(PathUnion(Axis("a", True), Axis("b", True)))
        )

    def test_node_test_in_path(self):
        assert parse_gxpath("a/[<b>]/c") == Concat(
            Concat(Axis("a", True), Test(HasPath(Axis("b", True)))), Axis("c", True)
        )

    @pytest.mark.parametrize("text", ["", "a//b", "(a", "a/[<b>", "a b", "|a"])
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_gxpath(text)


class TestNodeSyntax:
    def test_top_and_boolean(self):
        assert parse_gxpath_node("top") == Top()
        assert parse_gxpath_node("not top") == NodeNot(Top())
        assert parse_gxpath_node("<a> and <b> or top") == NodeOr(
            NodeAnd(HasPath(Axis("a", True)), HasPath(Axis("b", True))), Top()
        )

    def test_haspath(self):
        assert parse_gxpath_node("<a/b*>") == HasPath(
            Concat(Axis("a", True), StarPath(Axis("b", True)))
        )

    def test_data_node_tests(self):
        assert parse_gxpath_node("<a = b>") == DataNodeTest(
            Axis("a", True), Axis("b", True), True
        )
        assert parse_gxpath_node("<a != b->") == DataNodeTest(
            Axis("a", True), Axis("b", False), False
        )

    def test_parenthesised(self):
        assert parse_gxpath_node("(not (top))") == NodeNot(Top())

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_gxpath_node("<a> banana")


class TestParsedEvaluation:
    G = GraphDB(
        ["u", "v", "w"],
        [("u", "a", "v"), ("v", "b", "w"), ("w", "a", "u")],
        rho={"u": 1, "v": 1, "w": 2},
    )

    def test_path_evaluation(self):
        got = evaluate_gxpath(self.G, parse_gxpath("a/b"))
        assert got == {("u", "w")}

    def test_data_test_evaluation(self):
        got = evaluate_gxpath(self.G, parse_gxpath("a{=}"))
        assert got == {("u", "v")}

    def test_node_evaluation(self):
        # u and w have outgoing a-edges and no b-edge; v has only b.
        got = evaluate_gxpath_nodes(self.G, parse_gxpath_node("<a> and not <b>"))
        assert got == {"u", "w"}

    def test_parsed_translation_round(self):
        """Parsed GXPath goes through the TriAL* translation unchanged."""
        from repro.core import evaluate, project13
        from repro.translations import gxpath_to_trial

        expr = parse_gxpath("!(a/b) | a*")
        want = evaluate_gxpath(self.G, expr)
        got = project13(evaluate(gxpath_to_trial(expr), self.G.to_triplestore()))
        assert want == got
