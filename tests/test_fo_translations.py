"""E11/E12: TriAL ↔ FO translations (Theorems 4 and 6)."""

import itertools

import pytest
from hypothesis import given, settings

from repro.errors import TranslationError
from repro.core import R, evaluate, join, select, star
from repro.logic import (
    And,
    Eq,
    Exists,
    Not,
    Or,
    RelAtom,
    Sim,
    Var,
    active_domain,
    answers,
    satisfies,
)
from repro.logic.trcl import Trcl, answers_trcl, satisfies_trcl
from repro.translations import fo3_to_trial, trial_to_fo
from repro.triplestore import Triplestore
from tests.conftest import expressions, stores

from hypothesis import strategies as st


class TestTrialToFO6:
    @given(expressions(max_depth=3, allow_star=False), stores(max_triples=8))
    @settings(max_examples=60, deadline=None)
    def test_agreement_and_variable_bound(self, expr, store):
        """Theorem 4.1: e ≡ ϕ_e and ϕ_e ∈ FO⁶."""
        try:
            phi = trial_to_fo(expr)
        except TranslationError:
            # η-conditions against data constants are outside ⟨E, ∼⟩.
            return
        assert phi.num_variables() <= 6
        assert answers(phi, store, ("v1", "v2", "v3")) == evaluate(expr, store)

    def test_data_constants_rejected(self):
        with pytest.raises(TranslationError):
            trial_to_fo(select(R("E"), "rho(1)=7"))

    def test_universe_translation(self):
        from repro.core import Universe

        t = Triplestore([("a", "p", "b")])
        phi = trial_to_fo(Universe(), rel_names=("E",))
        assert len(answers(phi, t, ("v1", "v2", "v3"))) == 27

    def test_complement_translation(self):
        from repro.core import complement

        t = Triplestore([("a", "p", "b")])
        phi = trial_to_fo(complement(R("E")), rel_names=("E",))
        got = answers(phi, t, ("v1", "v2", "v3"))
        assert len(got) == 26 and ("a", "p", "b") not in got


class TestStarToTrCl:
    SMALL = Triplestore(
        [("a", "p", "b"), ("b", "q", "c"), ("c", "p", "a")],
        rho={"a": 1, "b": 1, "c": 2},
    )

    @pytest.mark.parametrize(
        "expr",
        [
            star(R("E"), "1,2,3'", "3=1'"),
            star(R("E"), "1,3',3", "2=1'"),
            star(R("E"), "1,2,3'", "3=1' & 2=2'"),
        ],
        ids=["reach-any", "example2-star", "same-label"],
    )
    def test_star_agreement(self, expr):
        """Theorem 6.1: stars become trcl constructs with equal semantics."""
        phi = trial_to_fo(expr)
        assert any(isinstance(n, Trcl) for n in phi.walk())
        got = answers_trcl(phi, self.SMALL, ("v1", "v2", "v3"))
        assert got == evaluate(expr, self.SMALL)

    def test_left_star_agreement(self):
        from repro.core import lstar

        expr = lstar(R("E"), "1,2,2'", "3=1'")
        phi = trial_to_fo(expr)
        got = answers_trcl(phi, self.SMALL, ("v1", "v2", "v3"))
        assert got == evaluate(expr, self.SMALL)


VARS = ("x", "y", "z")


@st.composite
def fo3_formulas(draw, depth: int = 2):
    if depth <= 0:
        kind = draw(st.sampled_from(("rel", "eq", "sim")))
    else:
        kind = draw(st.sampled_from(("rel", "eq", "sim", "not", "and", "or", "exists")))
    if kind == "rel":
        return RelAtom("E", tuple(Var(draw(st.sampled_from(VARS))) for _ in range(3)))
    if kind == "eq":
        return Eq(Var(draw(st.sampled_from(VARS))), Var(draw(st.sampled_from(VARS))))
    if kind == "sim":
        return Sim(Var(draw(st.sampled_from(VARS))), Var(draw(st.sampled_from(VARS))))
    if kind == "not":
        return Not(draw(fo3_formulas(depth=depth - 1)))
    if kind in ("and", "or"):
        cls = And if kind == "and" else Or
        return cls(draw(fo3_formulas(depth=depth - 1)), draw(fo3_formulas(depth=depth - 1)))
    return Exists(draw(st.sampled_from(VARS)), draw(fo3_formulas(depth=depth - 1)))


class TestFO3ToTrial:
    @given(fo3_formulas(), stores(max_triples=6))
    @settings(max_examples=50, deadline=None)
    def test_agreement(self, formula, store):
        """Theorem 4.2: every FO³ formula has an equivalent TriAL expr."""
        expr = fo3_to_trial(formula)
        got = evaluate(expr, store)
        domain = sorted(active_domain(store), key=repr)
        want = frozenset(
            (a, b, c)
            for a, b, c in itertools.product(domain, repeat=3)
            if satisfies(formula, store, {"x": a, "y": b, "z": c})
        )
        assert got == want

    def test_extra_variables_rejected(self):
        with pytest.raises(TranslationError):
            fo3_to_trial(Eq(Var("x"), Var("w")))

    def test_forall(self):
        from repro.logic import Forall

        t = Triplestore([("a", "p", "a"), ("p", "a", "p")])
        # ∀x ∃y E(x, y, x): true for every active object here.
        phi = Forall("x", Exists("y", RelAtom("E", (Var("x"), Var("y"), Var("x")))))
        got = evaluate(fo3_to_trial(phi), t)
        assert len(got) == 8  # all (x, y, z) combos, x/y/z free ranging

    def test_translation_produces_nonrecursive(self):
        phi = Exists("y", RelAtom("E", (Var("x"), Var("y"), Var("z"))))
        assert not fo3_to_trial(phi).is_recursive()


class TestTrCl3ToTrial:
    CHAIN = Triplestore([("a", "p", "b"), ("b", "p", "c"), ("c", "q", "d")])

    def test_simple_closure(self):
        step = Exists("z", RelAtom("E", (Var("x"), Var("z"), Var("y"))))
        tr = Trcl(("x",), ("y",), step, ("x",), ("y",))
        expr = fo3_to_trial(tr)
        assert expr.is_recursive()
        domain = sorted(active_domain(self.CHAIN), key=repr)
        want = frozenset(
            (a, b, c)
            for a, b, c in itertools.product(domain, repeat=3)
            if satisfies_trcl(tr, self.CHAIN, {"x": a, "y": b, "z": c})
        )
        assert evaluate(expr, self.CHAIN) == want

    def test_parameterised_closure(self):
        step = RelAtom("E", (Var("x"), Var("z"), Var("y")))
        tr = Trcl(("x",), ("y",), step, ("x",), ("y",))
        expr = fo3_to_trial(tr)
        domain = sorted(active_domain(self.CHAIN), key=repr)
        want = frozenset(
            (a, b, c)
            for a, b, c in itertools.product(domain, repeat=3)
            if satisfies_trcl(tr, self.CHAIN, {"x": a, "y": b, "z": c})
        )
        assert evaluate(expr, self.CHAIN) == want

    def test_argument_identification(self):
        """[trcl ϕ](x, x) — both endpoints the same variable."""
        step = Exists("z", RelAtom("E", (Var("x"), Var("z"), Var("y"))))
        cyc = Triplestore([("a", "p", "b"), ("b", "p", "a")])
        tr = Trcl(("x",), ("y",), step, ("x",), ("x",))
        expr = fo3_to_trial(tr)
        domain = sorted(active_domain(cyc), key=repr)
        want = frozenset(
            (a, b, c)
            for a, b, c in itertools.product(domain, repeat=3)
            if satisfies_trcl(tr, cyc, {"x": a, "y": b, "z": c})
        )
        assert evaluate(expr, cyc) == want
