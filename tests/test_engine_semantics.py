"""Semantics tests for the evaluation engines on hand-built stores."""

import pytest

from repro.errors import EvaluationBudgetError, FragmentError
from repro.core import (
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    R,
    Universe,
    complement,
    diagonal,
    evaluate,
    intersect_as_join,
    join,
    lstar,
    permute,
    select,
    star,
    universe_as_joins,
)
from repro.triplestore import Triplestore

ENGINES = [HashJoinEngine(), NaiveEngine(), FastEngine()]


@pytest.fixture(params=ENGINES, ids=lambda e: type(e).__name__)
def engine(request):
    return request.param


class TestBasicOperators:
    def test_relation_lookup(self, engine, small_store):
        assert evaluate(R("E"), small_store, engine) == small_store.relation("E")

    def test_select_on_objects(self, engine, small_store):
        got = evaluate(select(R("E"), "2='p'"), small_store, engine)
        assert got == {("a", "p", "b"), ("b", "p", "c")}

    def test_select_on_data(self, engine, small_store):
        got = evaluate(select(R("E"), "rho(1)=rho(3)"), small_store, engine)
        # rho: a=0,b=1,c=0,p=1,q=1,r=0
        assert got == {("a", "q", "c"), ("c", "q", "a"), ("p", "r", "q")}

    def test_select_inequality(self, engine, small_store):
        got = evaluate(select(R("E"), "1!=3"), small_store, engine)
        assert got == small_store.relation("E")

    def test_union_diff_intersect(self, engine, two_relation_store):
        t = two_relation_store
        assert evaluate(R("E") | R("F"), t, engine) == t.relation("E") | t.relation("F")
        assert evaluate(R("E") - R("F"), t, engine) == t.relation("E")
        assert evaluate(R("E") & R("E"), t, engine) == t.relation("E")
        assert evaluate(R("E") & R("F"), t, engine) == frozenset()


class TestJoins:
    def test_composition_join(self, engine):
        t = Triplestore([("a", "p", "b"), ("b", "q", "c")])
        got = evaluate(join(R("E"), R("E"), "1,2,3'", "3=1'"), t, engine)
        assert got == {("a", "p", "c")}

    def test_join_without_conditions_is_product(self, engine):
        t = Triplestore([("a", "p", "b"), ("c", "q", "d")])
        got = evaluate(join(R("E"), R("E"), "1,1',2'", ""), t, engine)
        assert got == {
            ("a", "a", "p"), ("a", "c", "q"), ("c", "a", "p"), ("c", "c", "q")
        }

    def test_join_with_object_constant(self, engine):
        t = Triplestore([("a", "p", "b"), ("b", "part_of", "c")])
        got = evaluate(
            join(R("E"), R("E"), "1,2,3'", "3=1' & 2'='part_of'"), t, engine
        )
        assert got == {("a", "p", "c")}

    def test_join_on_data_values(self, engine):
        t = Triplestore(
            [("a", "p", "b"), ("c", "q", "d")],
            rho={"a": 1, "c": 1, "b": 2, "d": 3},
        )
        got = evaluate(
            join(R("E"), R("E"), "1,1',3", "rho(1)=rho(1') & 3!=3'"), t, engine
        )
        assert got == {("a", "c", "b"), ("c", "a", "d")}

    def test_cross_inequality(self, engine):
        t = Triplestore([("a", "p", "b"), ("b", "q", "c")])
        got = evaluate(join(R("E"), R("E"), "1,1',3", "1!=1'"), t, engine)
        assert got == {("a", "b", "b"), ("b", "a", "c")}

    def test_output_can_repeat_positions(self, engine):
        t = Triplestore([("a", "p", "b")])
        got = evaluate(join(R("E"), R("E"), "1,1,1"), t, engine)
        assert got == {("a", "a", "a")}


class TestStars:
    def test_right_star_reach(self, engine):
        t = Triplestore([("a", "p", "b"), ("b", "q", "c"), ("c", "r", "d")])
        got = evaluate(star(R("E"), "1,2,3'", "3=1'"), t, engine)
        assert ("a", "p", "d") in got
        assert ("a", "p", "b") in got  # level 1
        assert ("b", "q", "d") in got

    def test_star_on_cycle_terminates(self, engine):
        t = Triplestore([("a", "p", "b"), ("b", "p", "a")])
        got = evaluate(star(R("E"), "1,2,3'", "3=1'"), t, engine)
        assert got == {
            ("a", "p", "b"), ("b", "p", "a"), ("a", "p", "a"), ("b", "p", "b")
        }

    def test_left_vs_right_differ(self, engine):
        # Example 3's store, checked per engine (full values in
        # test_paper_examples).
        t = Triplestore([("a", "b", "c"), ("c", "d", "e"), ("d", "e", "f")])
        right = evaluate(star(R("E"), "1,2,2'", "3=1'"), t, engine)
        left = evaluate(lstar(R("E"), "1,2,2'", "3=1'"), t, engine)
        assert right != left

    def test_same_label_star(self, engine):
        t = Triplestore(
            [("a", "l", "b"), ("b", "l", "c"), ("c", "m", "d")]
        )
        got = evaluate(star(R("E"), "1,2,3'", "3=1' & 2=2'"), t, engine)
        assert ("a", "l", "c") in got
        assert ("a", "l", "d") not in got  # label changes at c

    def test_star_of_empty_is_empty(self, engine):
        t = Triplestore([])
        assert evaluate(star(R("E"), "1,2,3'", "3=1'"), t, engine) == frozenset()


class TestUniverseAndDerived:
    def test_universe_is_active_domain_cubed(self, engine):
        t = Triplestore([("a", "p", "b")], extra_objects=["zzz"])
        got = evaluate(Universe(), t, engine)
        assert len(got) == 27  # zzz not active

    def test_universe_as_joins_matches(self, engine, small_store):
        native = evaluate(Universe(), small_store, engine)
        derived = evaluate(universe_as_joins(["E"]), small_store, engine)
        assert native == derived

    def test_complement(self, engine):
        t = Triplestore([("a", "p", "b")])
        got = evaluate(complement(R("E")), t, engine)
        assert len(got) == 26
        assert ("a", "p", "b") not in got

    def test_intersect_as_join_matches_native(self, engine, small_store):
        e1 = join(R("E"), R("E"), "1,2,3'", "3=1'")
        native = evaluate(R("E") & e1, small_store, engine)
        derived = evaluate(intersect_as_join(R("E"), e1), small_store, engine)
        assert native == derived

    def test_permute_reverses(self, engine, small_store):
        got = evaluate(permute(R("E"), "3,2,1"), small_store, engine)
        assert got == {(o, p, s) for s, p, o in small_store.relation("E")}

    def test_diagonal(self, engine):
        t = Triplestore([("a", "p", "b")])
        got = evaluate(diagonal(), t, engine)
        assert got == {("a", "a", "a"), ("p", "p", "p"), ("b", "b", "b")}

    def test_universe_budget(self):
        t = Triplestore([(f"o{i}", f"p{i}", f"q{i}") for i in range(20)])
        engine = HashJoinEngine(max_universe_objects=10)
        with pytest.raises(EvaluationBudgetError):
            engine.evaluate(Universe(), t)


class TestFastEngineSpecifics:
    def test_strict_rejects_inequalities(self, small_store):
        engine = FastEngine(strict=True)
        with pytest.raises(FragmentError):
            engine.evaluate(select(R("E"), "1!=2"), small_store)

    def test_strict_rejects_general_star(self, small_store):
        engine = FastEngine(strict=True)
        with pytest.raises(FragmentError):
            engine.evaluate(star(R("E"), "1,3',3", "2=1'"), small_store)

    def test_strict_accepts_reach_fragment(self, small_store):
        engine = FastEngine(strict=True)
        got = engine.evaluate(star(R("E"), "1,2,3'", "3=1'"), small_store)
        assert got == HashJoinEngine().evaluate(
            star(R("E"), "1,2,3'", "3=1'"), small_store
        )

    def test_nonstrict_falls_back(self, small_store):
        engine = FastEngine(strict=False)
        e = star(R("E"), "1,3',3", "2=1'")
        assert engine.evaluate(e, small_store) == HashJoinEngine().evaluate(
            e, small_store
        )
