"""Unit tests for the columnar store and the vectorised execution backend.

The randomized cross-engine agreement lives in ``test_differential.py``;
these tests pin the deterministic pieces: the packed-key encoding, the
backend-aware lowering, the dense/sparse representation choice with its
``MatrixTooLargeError`` fallback, and the facade/CLI wiring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    R,
    VectorEngine,
    join,
    select,
    star,
)
from repro.core.plan import ReachStarOp, StarOp, compile_plan, lower_plan
from repro.db import Database
from repro.errors import (
    EvaluationBudgetError,
    MatrixTooLargeError,
    ReproError,
    TriplestoreError,
    UnknownRelationError,
)
from repro.triplestore import ColumnarStore, MatrixStore
from repro.triplestore.model import Triplestore
from repro.workloads import chain_store, random_store


@pytest.fixture()
def store() -> Triplestore:
    return Triplestore(
        [
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "q", "a"),
            ("a", "q", "c"),
            ("c", "q", "c"),
        ],
        rho={"a": 0, "b": 1, "c": 0, "p": 1, "q": 0},
    )


# --------------------------------------------------------------------- #
# ColumnarStore
# --------------------------------------------------------------------- #


class TestColumnarStore:
    def test_roundtrip_relation(self, store):
        cs = store.columnar()
        assert cs.decode_triples(cs.relation_keys("E")) == store.relation("E")

    def test_encode_decode_arbitrary_triples(self, store):
        cs = store.columnar()
        triples = {("a", "a", "a"), ("c", "b", "p")}
        assert cs.decode_triples(cs.encode_triples(triples)) == triples

    def test_keys_are_sorted_unique(self, store):
        keys = store.columnar().relation_keys("E")
        assert np.all(np.diff(keys) > 0)

    def test_pack_unpack_inverse(self, store):
        cs = store.columnar()
        cols = cs.relation_columns("E")
        assert np.array_equal(cs.unpack(cs.pack(cols)), cols)

    def test_dv_codes_encode_rho(self, store):
        cs = store.columnar()
        for code, obj in enumerate(cs.objects):
            assert cs.dv_values[cs.dv_codes[code]] == store.rho(obj)

    def test_view_is_cached_on_the_store(self, store):
        assert store.columnar() is store.columnar()

    def test_unknown_relation(self, store):
        with pytest.raises(UnknownRelationError):
            store.columnar().relation_keys("Nope")

    def test_unknown_constants_encode_to_sentinel(self, store):
        cs = store.columnar()
        assert cs.code_of("not-there") == -1
        assert cs.dv_code_of("not-there") == -1


# --------------------------------------------------------------------- #
# MatrixTooLargeError (MatrixStore guard + columnar fallback)
# --------------------------------------------------------------------- #


class TestMatrixGuard:
    def test_matrix_store_raises_dedicated_error(self):
        big = random_store(30, 40, seed=1)
        with pytest.raises(MatrixTooLargeError) as excinfo:
            MatrixStore(big, max_objects=8)
        assert excinfo.value.n_objects == big.n_objects
        assert excinfo.value.limit == 8

    def test_matrix_error_is_a_triplestore_error(self):
        """Callers catching the old TriplestoreError keep working."""
        with pytest.raises(TriplestoreError):
            MatrixStore(random_store(30, 40, seed=1), max_objects=8)

    def test_dense_reach_guard_trips_and_falls_back(self):
        """A dense-lowered plan over a too-big store degrades to sparse."""
        small = random_store(5, 8, seed=3)
        big = random_store(40, 120, seed=4)
        engine = VectorEngine(max_matrix_objects=10)
        expr = star(R("E"), "1,2,3'", "3=1'")
        plan = engine.compile(expr, small)
        (op,) = [op for op in plan.walk() if isinstance(op, ReachStarOp)]
        assert op.vector_strategy == "dense"
        # Same cached plan, bigger store: the guard raises inside the
        # dense path and execution silently completes sparse.
        assert engine.execute_plan(plan, big) == FastEngine().evaluate(expr, big)

    def test_dense_path_raises_when_called_directly(self):
        from repro.core.engines.vectorized import reach_dense

        big = random_store(40, 120, seed=4)
        keys = big.columnar().relation_keys("E")
        with pytest.raises(MatrixTooLargeError):
            reach_dense(big.columnar(), 10, keys, same_label=False)

    def test_dense_closure_survives_256_path_witnesses(self):
        """Regression: a uint8 matmul accumulator wraps at 256 witnesses.

        z → a → m_k → b for 256 midpoints: the (a, b) closure entry has
        exactly 256 two-step witnesses, which a mod-256 accumulator
        counts as zero — silently dropping (z, p, b) from the result.
        """
        triples = [("z", "p", "a")]
        triples += [("a", "p", f"m{k}") for k in range(256)]
        triples += [(f"m{k}", "p", "b") for k in range(256)]
        store = Triplestore(triples)
        expr = star(R("E"), "1,2,3'", "3=1'")
        engine = VectorEngine()
        plan = engine.compile(expr, store)
        (op,) = [op for op in plan.walk() if isinstance(op, ReachStarOp)]
        assert op.vector_strategy == "dense"  # the bug needs the dense path
        result = engine.evaluate(expr, store)
        assert ("z", "p", "b") in result
        assert result == FastEngine().evaluate(expr, store)


# --------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------- #


class TestLowering:
    def test_columnar_lowering_annotates_stars(self, store):
        expr = star(R("E"), "1,2,3'", "3=1'")
        plan = compile_plan(expr, store, backend="columnar")
        (op,) = [op for op in plan.walk() if isinstance(op, ReachStarOp)]
        assert op.vector_strategy == "dense"
        assert "[dense]" in op.label()

    def test_sparse_verdict_above_the_guard(self):
        big = chain_store(600)
        expr = star(R("E"), "1,2,3'", "3=1'")
        plan = compile_plan(expr, big, backend="columnar")
        (op,) = [op for op in plan.walk() if isinstance(op, ReachStarOp)]
        assert op.vector_strategy == "sparse"

    def test_general_stars_are_always_sparse(self, store):
        expr = star(R("E"), "1,2,2'", "3=1'")
        plan = compile_plan(expr, store, backend="columnar", use_reach=True)
        (op,) = [op for op in plan.walk() if isinstance(op, StarOp)]
        assert op.vector_strategy == "sparse"

    def test_set_lowering_is_identity(self, store):
        expr = star(R("E"), "1,2,3'", "3=1'")
        plan = compile_plan(expr, store, backend="set")
        for op in plan.walk():
            assert getattr(op, "vector_strategy", None) is None

    def test_unknown_backend_rejected(self, store):
        with pytest.raises(ReproError):
            lower_plan(compile_plan(R("E"), store), backend="quantum")


# --------------------------------------------------------------------- #
# Engine behaviour pinned on fixed cases
# --------------------------------------------------------------------- #


class TestVectorEngine:
    def test_agrees_on_a_fixed_workload(self, store):
        naive, vector = NaiveEngine(), VectorEngine()
        workload = [
            R("E"),
            select(R("E"), "2='p' & rho(1)=rho(3)"),
            join(R("E"), R("E"), "1,2,3'", "3=1' & rho(2)=rho(2')"),
            join(R("E"), R("E"), "1,1',3", "1!=1'"),
            star(R("E"), "1,2,3'", "3=1'"),
            star(R("E"), "1,2,3'", "3=1' & 2=2'"),
            star(R("E"), "1,2,2'", "3=1'"),
        ]
        for expr in workload:
            assert vector.evaluate(expr, store) == naive.evaluate(expr, store), repr(expr)

    def test_universe_budget_enforced(self):
        big = random_store(50, 120, seed=2)
        engine = VectorEngine(max_universe_objects=10)
        from repro.core import universe

        with pytest.raises(EvaluationBudgetError):
            engine.evaluate(universe(), big)

    def test_closed_join_gate_does_not_suppress_child_errors(self):
        """Regression: children run before the constant gate, like the oracle.

        A join whose constant-only condition is false still evaluates its
        operands first, so a U child over an oversized store raises the
        budget error on every backend instead of vanishing on one.
        """
        from repro.core import universe
        from repro.core.expressions import Join

        big = random_store(50, 120, seed=2)
        expr = Join(universe(), R("E"), (0, 1, 2), "'x'='y'")
        engine = VectorEngine(max_universe_objects=10)
        with pytest.raises(EvaluationBudgetError):
            engine.evaluate(expr, big)

    def test_legacy_path_is_the_set_interpreter(self, store):
        legacy = VectorEngine(use_planner=False)
        expr = join(R("E"), R("E"), "1,2,3'", "3=1'")
        assert legacy.evaluate(expr, store) == HashJoinEngine().evaluate(expr, store)

    def test_unknown_relation_propagates(self, store):
        with pytest.raises(UnknownRelationError):
            VectorEngine().evaluate(R("Nope"), store)

    def test_composite_key_compression_preserves_join_semantics(
        self, store, monkeypatch
    ):
        """Regression: radix-folded join keys must not overflow int64.

        Forcing the compression threshold down makes every multi-equality
        join take the dense-re-ranking path; results must be unchanged.
        """
        import repro.core.engines.vectorized as vz

        monkeypatch.setattr(vz, "_MAX_COMPOSITE_KEY", 4)
        expr = join(
            R("E"), R("E"), "1,2,3'", "3=1' & 2=2' & rho(1)=rho(1')"
        )
        assert VectorEngine().evaluate(expr, store) == NaiveEngine().evaluate(
            expr, store
        )


# --------------------------------------------------------------------- #
# Facade and CLI wiring
# --------------------------------------------------------------------- #


class TestBackendWiring:
    def test_database_backend_selects_vector_engine(self, store):
        db = Database(store, backend="columnar")
        assert isinstance(db.engine, VectorEngine)
        assert db.backend == "columnar"
        assert db.query("star[1,2,3'; 3=1'](E)") == Database(store).query(
            "star[1,2,3'; 3=1'](E)"
        )

    def test_backend_inferred_from_engine(self, store):
        assert Database(store, VectorEngine()).backend == "columnar"
        assert Database(store, FastEngine()).backend == "set"

    def test_env_var_default(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "columnar")
        assert Database(store).backend == "columnar"
        monkeypatch.delenv("REPRO_BACKEND")
        assert Database(store).backend == "set"

    def test_unknown_backend_rejected(self, store):
        with pytest.raises(ReproError):
            Database(store, backend="quantum")

    def test_contradictory_engine_backend_rejected(self, store):
        with pytest.raises(ReproError):
            Database(store, FastEngine(), backend="columnar")
        with pytest.raises(ReproError):
            Database(store, VectorEngine(), backend="set")
        # Agreeing pairs stay fine.
        assert Database(store, VectorEngine(), backend="columnar").backend == "columnar"

    def test_plan_cache_keyed_per_backend(self, store):
        db = Database(store, backend="columnar")
        db.plan("star[1,2,3'; 3=1'](E)")
        info = db.cache_info()["plans"]
        assert info.misses == 1
        db.plan("star[1,2,3'; 3=1'](E)")
        assert db.cache_info()["plans"].hits == 1

    def test_explain_mentions_backend_and_strategy(self, store):
        db = Database(store, backend="columnar")
        text = db.explain("star[1,2,3'; 3=1'](E)", physical=True)
        assert "backend    : columnar" in text
        assert "[dense]" in text or "[sparse]" in text

    def test_cli_backend_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.triplestore import dump_path

        path = tmp_path / "s.tstore"
        dump_path(Triplestore([("a", "p", "b"), ("b", "p", "c")]), str(path))
        assert main(["query", str(path), "star[1,2,3'; 3=1'](E)", "--backend", "columnar"]) == 0
        out = capsys.readouterr().out
        assert "# 3 triples" in out

    def test_cli_backend_engine_conflict(self, tmp_path, capsys):
        from repro.cli import main
        from repro.triplestore import dump_path

        path = tmp_path / "s.tstore"
        dump_path(Triplestore([("a", "p", "b")]), str(path))
        assert main(["query", str(path), "E", "--engine", "naive", "--backend", "columnar"]) == 1
        assert "columnar" in capsys.readouterr().err
        # The columnar backend is planner-only.
        assert main(["query", str(path), "E", "--backend", "columnar", "--no-planner"]) == 1
        assert "planner-only" in capsys.readouterr().err
        # --engine vector with an explicit set backend is contradictory...
        assert main(["query", str(path), "E", "--engine", "vector", "--backend", "set"]) == 1
        assert "columnar" in capsys.readouterr().err
        # ...but --engine vector alone implies columnar and works.
        assert main(["query", str(path), "E", "--engine", "vector"]) == 0
        capsys.readouterr()
        # --engine vector --no-planner would silently run set execution.
        assert main(["query", str(path), "E", "--engine", "vector", "--no-planner"]) == 1
        assert "planner-only" in capsys.readouterr().err
