"""Concurrency soak for the query service: many clients, zero drops.

One server, three tenants (one per execution backend), and a pool of
client threads mixing ad-hoc queries, prepared statements and WebSocket
streams.  The service's promises under load are checked exactly:

* every request is answered — no hung thread, no dropped query, and
  every row count matches the single-threaded ground truth;
* sessions are isolated — a statement prepared on one tenant does not
  exist on another;
* ``/metrics`` tells the truth — the query counter reconciles with the
  number of requests issued, and the cache counters reconcile with
  ``Database.cache_info()`` on the live sessions.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.engines.sharded import ShardedEngine
from repro.db import Database
from repro.errors import RemoteError
from repro.service import QueryServer, ServiceClient, ServiceConfig
from repro.service.metrics import parse_exposition
from repro.workloads.generators import random_store

#: One deterministic store for every tenant, so ground truth is shared.
STORE = random_store(50, 2500, n_relations=2, data_values=range(6), seed=11)

#: The soak mix: a scan, a selection, a repartitioned join, a fixpoint.
AD_HOC = [
    "E0",
    "select[rho(1)=rho(3)](E0)",
    "join[1,3',3; 2=1'](E0, E1)",
    "star[1,2,3'; 3=1'](E0)",
]

PREPARED = "select[1=$s](E0)"
PREPARED_BINDING = {"s": "o3"}

N_THREADS = 32
OPS_PER_THREAD = 6


@pytest.fixture(scope="module")
def server():
    tenants = {
        "set": Database(STORE),
        "columnar": Database(STORE, backend="columnar"),
        "sharded": Database(
            STORE, ShardedEngine(shards=4, executor="thread")
        ),
    }
    config = ServiceConfig(
        port=0,
        max_inflight=8,
        queue_depth=256,
        queue_timeout=60.0,
        query_timeout=120.0,
    )
    with QueryServer(tenants, config) as srv:
        yield srv


@pytest.fixture(scope="module")
def truth():
    """Single-threaded ground truth, computed once on the set backend."""
    db = Database(STORE)
    totals = {q: db.query(q).total for q in AD_HOC}
    totals[PREPARED] = db.query(PREPARED, **PREPARED_BINDING).total
    return totals


def _soak_worker(url: str, tenant: str, sids: dict, truth: dict, errors: list):
    """One client session: ad-hoc + prepared + streamed queries."""
    try:
        with ServiceClient(url, tenant=tenant) as client:
            for i in range(OPS_PER_THREAD):
                query = AD_HOC[i % len(AD_HOC)]
                mode = i % 3
                if mode == 0:
                    body = client.query(query, limit=0)
                    assert body["total"] == truth[query], query
                elif mode == 1:
                    body = client.execute(sids[tenant], params=PREPARED_BINDING)
                    assert body["total"] == truth[PREPARED]
                else:
                    rows = 0
                    done = None
                    for message in client.stream(query, page_size=128):
                        if message.get("done"):
                            done = message
                            break
                        rows += len(message["rows"])
                    assert done is not None, f"stream never finished: {query}"
                    assert rows == done["total"] == truth[query], query
    except BaseException as exc:  # surfaces in the main thread
        errors.append((tenant, repr(exc)))


def test_soak_many_concurrent_sessions(server, truth):
    """≥32 concurrent client sessions over all three backends: every
    query answered correctly, nothing hung, nothing dropped."""
    with ServiceClient(server.url) as admin:
        sids = {
            tenant: admin.prepare(PREPARED, tenant=tenant)["statement"]
            for tenant in ("set", "columnar", "sharded")
        }
    errors: list = []
    threads = [
        threading.Thread(
            target=_soak_worker,
            args=(
                server.url,
                ("set", "columnar", "sharded")[i % 3],
                sids,
                truth,
                errors,
            ),
            daemon=True,
        )
        for i in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180.0)
    hung = [t for t in threads if t.is_alive()]
    assert not hung, f"{len(hung)} client thread(s) hung"
    assert not errors, errors

    # Zero-drop accounting: the ok-counter across tenants must equal
    # exactly the number of queries the soak issued (prepares are not
    # queries; admission never rejected anything at this queue depth).
    with ServiceClient(server.url) as admin:
        series = parse_exposition(admin.metrics())
    issued = N_THREADS * OPS_PER_THREAD
    counted = sum(
        value
        for name, value in series.items()
        if name.startswith("repro_queries_total{") and 'status="ok"' in name
    )
    assert counted == issued
    rejected = sum(
        value
        for name, value in series.items()
        if name.startswith("repro_admission_rejections_total")
    )
    assert rejected == 0
    # Quiesced: nothing in flight or queued once the soak has joined.
    assert series["repro_admission_inflight"] == 0
    assert series["repro_admission_queued"] == 0
    assert series["repro_query_seconds_count"] == issued
    # The server notices a departed streaming client when it processes
    # the close frame — moments after the client thread has joined.
    deadline = time.monotonic() + 10.0
    while series["repro_ws_connections"] != 0:
        assert time.monotonic() < deadline, "WebSocket connections leaked"
        time.sleep(0.05)
        with ServiceClient(server.url) as admin:
            series = parse_exposition(admin.metrics())


def test_metrics_reconcile_with_cache_info(server, truth):
    """The /metrics cache counters are the sessions' own LRU counters.

    Scraped totals must equal ``Database.cache_info()`` exactly — per
    tenant, per cache, per event — while the sessions are live.
    """
    with ServiceClient(server.url, tenant="set") as client:
        client.query(AD_HOC[0], limit=0)
        client.query(AD_HOC[0], limit=0)  # result-cache hit
        series = parse_exposition(client.metrics())
    for session in server.pool:
        info = session.db.cache_info()
        for cache, counters in info.items():
            for event, value in (
                ("hit", counters.hits),
                ("miss", counters.misses),
            ):
                key = (
                    "repro_cache_events_total{"
                    f'tenant="{session.name}",cache="{cache}",event="{event}"'
                    "}"
                )
                assert series[key] == value, key
    # The repeated ad-hoc query above must actually have hit a cache.
    set_info = server.pool.session("set").db.cache_info()
    assert set_info["results"].hits + set_info["plans"].hits > 0


def test_statements_are_per_tenant(server):
    """Session isolation: a statement id is meaningless on any tenant
    other than the one that prepared it."""
    with ServiceClient(server.url) as client:
        sid = client.prepare(PREPARED, tenant="set")["statement"]
        body = client.execute(sid, params=PREPARED_BINDING, tenant="set")
        assert body["total"] >= 0
        with pytest.raises(RemoteError) as excinfo:
            client.execute(sid, params=PREPARED_BINDING, tenant="columnar")
    assert excinfo.value.remote_type == "ProtocolError"
    assert excinfo.value.status == 400
    assert "columnar" in str(excinfo.value)


def test_statement_count_is_scraped(server):
    """The prepared-statement gauge mirrors the registries at scrape."""
    with ServiceClient(server.url) as client:
        client.prepare(PREPARED, tenant="sharded")
        series = parse_exposition(client.metrics())
    for session in server.pool:
        key = f'repro_prepared_statements{{tenant="{session.name}"}}'
        assert series[key] == session.statement_count()


def test_concurrent_prepare_and_execute_race(server, truth):
    """Prepare/execute raced from many threads: every returned id is
    immediately executable, ids never collide."""
    ids: list = []
    errors: list = []
    lock = threading.Lock()

    def worker():
        try:
            with ServiceClient(server.url, tenant="set") as client:
                sid = client.prepare(PREPARED)["statement"]
                body = client.execute(sid, params=PREPARED_BINDING)
                assert body["total"] == truth[PREPARED]
                with lock:
                    ids.append(sid)
        except BaseException as exc:
            errors.append(repr(exc))

    threads = [threading.Thread(target=worker, daemon=True) for _ in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not errors, errors
    assert len(ids) == 16
    assert len(set(ids)) == 16
