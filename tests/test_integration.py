"""End-to-end integration tests across subsystem boundaries.

Each test strings several subsystems together the way a downstream user
would: files → parser → optimiser → engine → composition; RDF → σ →
graph languages → translations → algebra; datalog → validation →
algebra → FO.
"""

from pathlib import Path

import pytest

from repro.core import (
    FastEngine,
    HashJoinEngine,
    R,
    evaluate,
    join,
    parse,
    project13,
    query_q,
    star,
)
from repro.core.explain import explain
from repro.core.optimizer import optimize
from repro.datalog import datalog_to_trial, parse_program, run_program
from repro.graphdb import evaluate_gxpath, parse_gxpath
from repro.logic import answers
from repro.rdf import RDFGraph, figure1, parse_ntriples, serialize_ntriples, sigma
from repro.translations import gxpath_to_trial, trial_to_fo
from repro.triplestore import Triplestore, dumps, loads
from repro.workloads import random_graph, transport_network

DATA = Path(__file__).parent.parent / "data"


class TestFileRoundTrips:
    def test_shipped_figure1_matches_dataset(self):
        stored = loads((DATA / "figure1.tstore").read_text())
        assert stored == figure1()

    def test_shipped_query_q_program(self):
        program = parse_program((DATA / "query_q.dl").read_text())
        store = loads((DATA / "figure1.tstore").read_text())
        assert run_program(program, store) == evaluate(query_q(), store)

    def test_store_survives_serialisation_under_queries(self):
        store = transport_network(n_cities=10, n_services=3, n_companies=2, seed=1)
        reloaded = loads(dumps(store))
        q = query_q()
        assert evaluate(q, store) == evaluate(q, reloaded)

    def test_rdf_ntriples_to_algebra(self):
        doc = parse_ntriples(serialize_ntriples(RDFGraph(figure1().relation("E"))))
        assert evaluate(query_q(), doc.to_triplestore()) == evaluate(
            query_q(), figure1()
        )


class TestTextToResultPipelines:
    def test_parse_optimize_evaluate(self):
        store = figure1()
        text = "select[2='part_of'](select[](E)) | (E - E)"
        raw = parse(text)
        opt = optimize(raw)
        assert opt.size() < raw.size()
        assert evaluate(opt, store) == evaluate(raw, store)
        assert evaluate(opt, store) == {
            t for t in store.relation("E") if t[1] == "part_of"
        }

    def test_explain_guides_engine_choice(self):
        expr = parse("star[1,2,3'; 3=1'](E)")
        report = explain(expr)
        engine = {"FastEngine": FastEngine, "HashJoinEngine": HashJoinEngine}[
            report.recommended_engine
        ]()
        assert evaluate(expr, figure1(), engine) == evaluate(expr, figure1())

    def test_composition_chain(self):
        """Closure in practice: feed one query's output into the next."""
        store = figure1()
        hops_with_company = evaluate(parse("join[1,3',3; 2=1'](E, E)"), store)
        stage2 = store.with_relation("ByCompany", hops_with_company)
        same_company_chain = evaluate(
            star(R("ByCompany"), "1,2,3'", "3=1' & 2=2'"), stage2
        )
        assert ("St. Andrews", "NatExpress", "Edinburgh") in same_company_chain


class TestCrossSubsystemAgreement:
    def test_gxpath_text_to_algebra_to_fo(self):
        """GXPath text → TriAL* → (non-recursive part) FO, one chain."""
        g = random_graph(5, 8, seed=21)
        alpha = parse_gxpath("a/b-")
        expr = gxpath_to_trial(alpha)
        native = evaluate_gxpath(g, alpha)
        via_algebra = project13(evaluate(expr, g.to_triplestore()))
        assert native == via_algebra
        phi = trial_to_fo(expr)
        via_fo = frozenset(
            (row[0], row[2])
            for row in answers(phi, g.to_triplestore(), ("v1", "v2", "v3"))
        )
        assert via_fo == native

    def test_datalog_file_to_algebra_to_engines(self):
        program = parse_program((DATA / "query_q.dl").read_text())
        expr = datalog_to_trial(program)
        store = transport_network(n_cities=12, n_services=3, n_companies=2, seed=4)
        reference = run_program(program, store)
        for engine in (HashJoinEngine(), FastEngine()):
            assert engine.evaluate(expr, store) == reference

    def test_sigma_round_through_graph_queries(self):
        doc = RDFGraph(figure1().relation("E"))
        g = sigma(doc)
        # "next" over sigma == direct travel hops.
        pairs = evaluate_gxpath(g, parse_gxpath("next"))
        direct = {(s, o) for s, _, o in doc}
        assert pairs == direct


class TestErrorPropagation:
    def test_unknown_relation_surfaces_from_deep_pipelines(self):
        from repro.errors import UnknownRelationError

        expr = join(R("Nope"), R("E"), "1,2,3")
        with pytest.raises(UnknownRelationError):
            evaluate(expr, figure1())

    def test_budget_error_from_universe_in_big_store(self):
        from repro.errors import EvaluationBudgetError

        store = Triplestore([(f"o{i}", f"p{i}", f"q{i}") for i in range(300)])
        engine = HashJoinEngine(max_universe_objects=100)
        with pytest.raises(EvaluationBudgetError):
            engine.evaluate(parse("compl(E)"), store)
