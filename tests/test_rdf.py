"""Tests for RDF documents, the mini N-Triples dialect and σ details."""

import pytest

from repro.errors import ParseError
from repro.graphdb import evaluate_nre, parse_nre
from repro.rdf import (
    RDFGraph,
    figure1,
    parse_ntriples,
    serialize_ntriples,
    sigma,
    sigma_preimage_candidates,
)


class TestRDFGraph:
    DOC = RDFGraph([("s", "p", "o"), ("p", "q", "o")])

    def test_resources(self):
        assert self.DOC.resources() == {"s", "p", "o", "q"}

    def test_role_accessors(self):
        assert self.DOC.subjects() == {"s", "p"}
        assert self.DOC.predicates() == {"p", "q"}
        assert self.DOC.objects() == {"o"}

    def test_set_ops(self):
        extended = self.DOC.union(RDFGraph([("a", "b", "c")]))
        assert len(extended) == 3
        assert extended.without(("a", "b", "c")) == self.DOC

    def test_to_from_triplestore(self):
        store = self.DOC.to_triplestore()
        assert RDFGraph.from_triplestore(store) == self.DOC

    def test_middle_as_subject_allowed(self):
        """The RDF hallmark: predicates may be subjects elsewhere."""
        assert ("p", "q", "o") in self.DOC


class TestNTriples:
    def test_parse_angle_brackets(self):
        doc = parse_ntriples("<a> <b> <c> .\n<d> <e> <f> .")
        assert ("a", "b", "c") in doc and len(doc) == 2

    def test_parse_bare_tokens(self):
        doc = parse_ntriples("TrainOp1 part_of EastCoast .")
        assert ("TrainOp1", "part_of", "EastCoast") in doc

    def test_comments_and_blanks(self):
        doc = parse_ntriples("# nothing\n\n<a> <b> <c> .")
        assert len(doc) == 1

    def test_roundtrip(self):
        doc = RDFGraph(figure1().relation("E"))
        assert parse_ntriples(serialize_ntriples(doc)) == doc

    def test_wrong_term_count(self):
        with pytest.raises(ParseError):
            parse_ntriples("<a> <b> .")


class TestSigmaDetails:
    def test_edge_set_shape(self):
        doc = RDFGraph([("s", "p", "o")])
        g = sigma(doc)
        assert g.edges == {
            ("s", "edge", "p"), ("p", "node", "o"), ("s", "next", "o")
        }
        assert g.nodes == {"s", "p", "o"}

    def test_preimage_of_injective_doc(self):
        doc = RDFGraph([("s", "p", "o")])
        assert sigma_preimage_candidates(sigma(doc)) == doc

    def test_preimage_overapproximates_on_collision(self):
        # Two triples sharing s and p create a spurious candidate when
        # another (s, p', o') exists with crossing next/node edges.
        doc = RDFGraph([("s", "p", "o1"), ("s", "q", "o2"), ("t", "p", "o2"), ("t", "q", "o1")])
        candidates = sigma_preimage_candidates(sigma(doc))
        assert doc.triples <= candidates.triples
        assert len(candidates) > len(doc)

    def test_figure2_fragment(self):
        """Figure 2's fragment: London/TrainOp2/Brussels + part_of/Eurostar."""
        doc = RDFGraph(
            [
                ("London", "Train Op 2", "Brussels"),
                ("Train Op 2", "part_of", "Eurostar"),
            ]
        )
        g = sigma(doc)
        assert ("London", "edge", "Train Op 2") in g.edges
        assert ("Train Op 2", "node", "Brussels") in g.edges
        assert ("London", "next", "Brussels") in g.edges
        assert ("Train Op 2", "next", "Eurostar") in g.edges

    def test_nre_on_sigma_finds_operators(self):
        """Navigation over σ(D): city --edge--> operator --next--> company."""
        g = sigma(RDFGraph(figure1().relation("E")))
        got = evaluate_nre(g, parse_nre("edge.next"))
        assert ("Edinburgh", "EastCoast") in got
