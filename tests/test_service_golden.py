"""Golden-file tests for the service's wire formats.

Two formats are pinned byte for byte:

* the ``/metrics`` Prometheus exposition of a *fresh* server — every
  family, help string, label set and zero value.  Renaming a metric or
  dropping a label breaks dashboards silently; here it breaks a
  readable golden diff instead;
* the ``/v1/explain`` response — which must be *the same report* the
  in-process API produces, pinned against the existing
  ``tests/golden/*.json`` explain goldens (HTTP parity: the service
  adds transport, not its own dialect).

Regenerate after an intentional change::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_service_golden.py
"""

from __future__ import annotations

import json
import os

import pytest
from test_explain_golden import BACKENDS, CASES, GOLDEN_STORE

from repro.db import Database
from repro.service import QueryServer, ServiceClient, ServiceConfig

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _fresh_server() -> QueryServer:
    """The pinned server shape: one set tenant, one sharded tenant.

    Everything that shows in the exposition is fixed — tenant names,
    backends, the thread executor (no worker processes), and a config
    whose values do not appear in any metric.
    """
    from repro.core.engines.sharded import ShardedEngine

    tenants = {
        "default": Database(GOLDEN_STORE),
        "sharded": Database(
            GOLDEN_STORE, ShardedEngine(shards=4, executor="thread")
        ),
    }
    return QueryServer(tenants, ServiceConfig(port=0))


def test_metrics_exposition_matches_golden():
    with _fresh_server() as server:
        with ServiceClient(server.url) as client:
            rendered = client.metrics()
    path = os.path.join(GOLDEN_DIR, "metrics.txt")
    if os.environ.get("UPDATE_GOLDEN"):
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(rendered)
        pytest.skip(f"regenerated {path}")
    with open(path, encoding="utf-8") as fp:
        expected = fp.read()
    assert rendered == expected, (
        f"/metrics exposition drifted from {path}; metric renames break "
        "dashboards — if intentional, regenerate with UPDATE_GOLDEN=1"
    )


def test_metrics_exposition_is_deterministic():
    """Two fresh servers expose byte-identical text (ordering is fixed
    by registration and sorted labels, not dict happenstance)."""
    with _fresh_server() as one:
        with ServiceClient(one.url) as client:
            first = client.metrics()
    with _fresh_server() as two:
        with ServiceClient(two.url) as client:
            second = client.metrics()
    assert first == second


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("name,query", CASES, ids=[c[0] for c in CASES])
def test_http_explain_matches_explain_goldens(name, query, backend):
    """HTTP parity: ``POST /v1/explain`` returns exactly the report the
    explain goldens pin for the same (query, backend) pair.

    ``optimize=False`` because the goldens render the raw expression;
    there is no UPDATE path here — these goldens belong to
    ``test_explain_golden.py`` and this test only asserts parity.
    """
    path = os.path.join(GOLDEN_DIR, f"{name}_{backend}.json")
    if not os.path.exists(path):  # pragma: no cover — regen ordering
        pytest.skip(f"{path} not generated yet")
    with open(path, encoding="utf-8") as fp:
        expected = json.load(fp)
    db = Database(GOLDEN_STORE, BACKENDS[backend](), optimize=False)
    with QueryServer(db, ServiceConfig(port=0)) as server:
        with ServiceClient(server.url) as client:
            report = client.explain(query)
    assert report == expected
