"""The v2 query API: prepared statements, cursors, explain, batches.

Covers the acceptance bar of the API redesign:

* a prepared TriAL statement executed under several parameter bindings
  compiles exactly once (``cache_info()``) and returns exactly what a
  fresh per-binding compilation returns, on all four backends;
* ``ResultSet`` behaves like the frozenset it replaced while keeping
  columnar results undecoded until rows are consumed;
* mutation invalidation is relation-aware, and ``db.batch()`` is
  transactional;
* the structured explain report round-trips through JSON.
"""

import json
import threading

import pytest

from repro.api import LANGUAGES, PreparedStatement, ResultSet, explain_report
from repro.core import NaiveEngine, parse
from repro.core.params import (
    bind_plan,
    canonicalize_constants,
    expr_params,
    plan_params,
    substitute_params,
)
from repro.core.positions import Param
from repro.db import Database, _LRU
from repro.errors import AlgebraError, ReproError, UnboundParameterError
from repro.rdf import figure1
from repro.triplestore.model import Triplestore
from repro.workloads import transport_network

#: A small fixed store with two relations and label variety.
STORE = Triplestore(
    {
        "E": [
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "q", "a"),
            ("a", "q", "c"),
            ("d", "p", "a"),
            ("d", "r", "b"),
        ],
        "F": [("b", "r", "d"), ("c", "r", "d")],
    },
    rho={"a": 0, "b": 1, "c": 0, "d": 1, "p": 0, "q": 1, "r": 0},
)

#: The four execution stacks of the acceptance criterion.
BACKEND_DBS = {
    "naive": lambda store: Database(store, NaiveEngine()),
    "fast": lambda store: Database(store, backend="set"),
    "columnar": lambda store: Database(store, backend="columnar"),
    "sharded": lambda store: Database(store, backend="sharded", shards=3),
}

PARAM_QUERY = "join[1,3',3; 2=1'](select[2=$label](E), (E | F))"
BINDINGS = ["p", "q", "r"]


# --------------------------------------------------------------------- #
# Parameterized expressions (core machinery)
# --------------------------------------------------------------------- #


class TestParams:
    def test_dollar_syntax_round_trips(self):
        expr = parse("select[2=$label & rho(1)=$dv](E)")
        assert expr_params(expr) == ("label", "dv")
        assert parse(repr(expr)) == expr

    def test_param_name_must_be_identifier(self):
        with pytest.raises(AlgebraError):
            Param("not an identifier")

    def test_substitute_params_yields_constant_expr(self):
        expr = parse("select[2=$x](E)")
        assert substitute_params(expr, {"x": "p"}) == parse("select[2='p'](E)")

    def test_canonicalize_extracts_all_constants(self):
        canon, binds = canonicalize_constants(parse("select[2='p' & 1='a'](E)"))
        assert expr_params(canon) == tuple(binds)
        assert sorted(binds.values()) == ["a", "p"]
        assert substitute_params(canon, binds) == parse("select[2='p' & 1='a'](E)")

    def test_canonicalize_is_constant_blind(self):
        canon_a, _ = canonicalize_constants(parse("select[2='p'](E)"))
        canon_b, _ = canonicalize_constants(parse("select[2='zzz'](E)"))
        assert canon_a == canon_b

    def test_canonicalize_avoids_user_name_collisions(self):
        canon, binds = canonicalize_constants(parse("select[2=$_c0 & 1='a'](E)"))
        assert "_c0" not in binds  # the user owns $_c0; the auto name skipped it
        assert set(expr_params(canon)) == {"_c0"} | set(binds)

    def test_bind_plan_substitutes_and_shares(self):
        db = Database(STORE)
        expr = db._logical(parse("select[2=$x](E)"))
        plan = db.plan(expr)
        assert plan_params(plan) == ("x",)
        bound = bind_plan(plan, {"x": "p"})
        assert plan_params(bound) == ()
        # Parameter-free operators are shared, not copied.
        assert bind_plan(plan, {}) is plan

    def test_unbound_execution_raises(self):
        db = Database(STORE)
        with pytest.raises(UnboundParameterError):
            db.query("select[2=$x](E)")

    def test_unknown_binding_rejected(self):
        db = Database(STORE)
        with pytest.raises(AlgebraError):
            db.query("select[2=$x](E)", x="p", typo="q")


# --------------------------------------------------------------------- #
# Prepared statements — the acceptance criterion
# --------------------------------------------------------------------- #


class TestPreparedStatements:
    @pytest.mark.parametrize("backend", sorted(BACKEND_DBS))
    def test_compiles_once_and_matches_fresh_compilation(self, backend):
        db = BACKEND_DBS[backend](STORE)
        stmt = db.prepare(PARAM_QUERY)
        assert isinstance(stmt, PreparedStatement)
        assert stmt.params == ("label",)
        plan_misses_after_prepare = db.cache_info()["plans"].misses

        results = {}
        for label in BINDINGS:
            results[label] = stmt.execute(label=label).to_set()

        info = db.cache_info()["plans"]
        # Compiled exactly once: no further planning happened while the
        # three bindings executed.
        assert info.misses == plan_misses_after_prepare
        if getattr(db.engine, "use_planner", False):
            # Planner engines fetch the cached plan per execution.
            assert info.hits >= len(BINDINGS)

        for label in BINDINGS:
            fresh = BACKEND_DBS[backend](STORE)
            constant_query = PARAM_QUERY.replace("$label", f"'{label}'")
            assert results[label] == fresh.query(constant_query).to_set(), label

    @pytest.mark.parametrize("backend", sorted(BACKEND_DBS))
    def test_same_plan_object_across_bindings(self, backend):
        db = BACKEND_DBS[backend](STORE)
        stmt = db.prepare("select[2=$x](E)")
        assert stmt.plan() is stmt.plan()

    def test_repeated_binding_hits_result_cache(self):
        db = Database(STORE)
        stmt = db.prepare("select[2=$x](E)")
        stmt.execute(x="p")
        before = db.cache_info()["results"].hits
        stmt.execute(x="p")
        assert db.cache_info()["results"].hits == before + 1

    @pytest.mark.parametrize("backend", sorted(BACKEND_DBS))
    def test_statements_differing_only_in_constants_do_not_collide(self, backend):
        # Both canonicalize to select[2=$_c0](E): the result-cache key
        # must carry the canonicalized constants, not just user bindings.
        db = BACKEND_DBS[backend](STORE)
        s1 = db.prepare("select[2='p'](E)")
        s2 = db.prepare("select[2='q'](E)")
        assert s1.execute().to_set() == db.query("select[2='p'](E)").to_set()
        assert s2.execute().to_set() == db.query("select[2='q'](E)").to_set()
        assert s1.execute().to_set() != s2.execute().to_set()

    @pytest.mark.parametrize("backend", ["fast", "columnar", "sharded"])
    def test_executing_unbound_plan_raises(self, backend):
        # A parameterized plan handed straight to an engine must raise,
        # not silently miss the index and return an empty result.
        db = BACKEND_DBS[backend](STORE)
        stmt = db.prepare("select[2=$x](E)")
        with pytest.raises(UnboundParameterError):
            db.engine.execute_plan(stmt.plan(), db.store)

    def test_executemany(self):
        db = Database(STORE)
        stmt = db.prepare("select[2=$x](E)")
        a, b = stmt.executemany([{"x": "p"}, {"x": "q"}])
        assert a == db.query("select[2='p'](E)")
        assert b == db.query("select[2='q'](E)")

    def test_missing_binding_raises(self):
        stmt = Database(STORE).prepare(PARAM_QUERY)
        with pytest.raises(UnboundParameterError, match="label"):
            stmt.execute()

    def test_eta_parameter_binds_data_values(self):
        db = Database(STORE)
        stmt = db.prepare("select[rho(1)=$dv](E)")
        assert stmt.execute(dv=0) == db.query("select[rho(1)=0](E)")
        assert stmt.execute(dv=1) == db.query("select[rho(1)=1](E)")

    def test_cross_parameter_plan_cache_for_plain_queries(self):
        # Not just prepared statements: ad-hoc queries differing only in
        # constants canonicalize to one plan-cache entry.
        db = Database(STORE)
        db.query("select[2='p'](E)")
        before = db.cache_info()["plans"]
        db.query("select[2='q'](E)")
        db.query("select[2='r'](E)")
        after = db.cache_info()["plans"]
        assert after.misses == before.misses
        assert after.hits >= before.hits + 2

    def test_prepare_rejects_non_algebraic_languages(self):
        doc_db = Database(STORE)
        with pytest.raises(ReproError, match="prepared"):
            doc_db.prepare(
                "P(x,z) :- E(x,y,z).\nAns(x,y,z) :- E(x,y,z), P(x, z).\n",
                lang="datalog",
            )

    def test_prepare_graph_language(self):
        db = Database(figure1())
        stmt = db.prepare("a/b-", lang="gxpath")
        assert stmt.execute().pairs() == db.query("a/b-", lang="gxpath").pairs()

    def test_randomized_bound_equals_recompiled(self):
        """Differential: bound execution ≡ fresh compilation, random stores.

        Random stores and constants from the differential harness's
        generator; every backend must agree between (a) one prepared
        plan bound per constant and (b) a per-constant recompilation.
        """
        import random

        from tests.diffcheck import random_triplestore

        rng = random.Random(20260729)
        for round_no in range(5):
            store = random_triplestore(rng)
            objects = sorted(store.objects, key=repr)
            labels = [rng.choice(objects) for _ in range(3)]
            for backend, make_db in BACKEND_DBS.items():
                db = make_db(store)
                stmt = db.prepare("join[1,2,3'; 3=1'](select[2=$l](E), E)")
                for label in labels:
                    bound = stmt.execute(l=label).to_set()
                    fresh = make_db(store).query(
                        parse("join[1,2,3'; 3=1'](select[2=$l](E), E)"),
                        l=label,
                    )
                    assert bound == fresh.to_set(), (backend, round_no, label)


# --------------------------------------------------------------------- #
# ResultSet: the lazy cursor
# --------------------------------------------------------------------- #


class TestResultSet:
    @pytest.mark.parametrize("backend", sorted(BACKEND_DBS))
    def test_set_compatibility(self, backend):
        db = BACKEND_DBS[backend](STORE)
        rs = db.query("E")
        expected = STORE.relation("E")
        assert rs == expected
        assert expected == rs
        assert len(rs) == len(expected)
        assert set(rs) == set(expected)
        assert ("a", "p", "b") in rs
        assert ("a", "zzz", "b") not in rs
        assert "not-a-triple" not in rs
        assert hash(rs) == hash(frozenset(expected))
        assert (rs | {("x", "y", "z")}) == expected | {("x", "y", "z")}
        assert (rs - expected) == frozenset()
        assert bool(rs) and not bool(db.query("E - E"))

    @pytest.mark.parametrize("backend", sorted(BACKEND_DBS))
    def test_limit_offset_window(self, backend):
        db = BACKEND_DBS[backend](STORE)
        rs = db.query("E")
        rows = rs.to_list()
        assert rs.limit(2).to_list() == rows[:2]
        assert rs.offset(2).to_list() == rows[2:]
        assert rs.offset(1).limit(3).to_list() == rows[1:4]
        assert rs.limit(3).offset(1).to_list() == rows[1:3]
        assert rs.limit(0).to_list() == []
        assert len(rs.offset(len(rows) + 5)) == 0
        assert rs.total == len(rows)
        assert rs.limit(2).total == len(rows)
        assert rs.first() == rows[0]
        with pytest.raises(AlgebraError):
            rs.limit(-1)

    def test_iteration_is_deterministic(self):
        a = Database(STORE).query("E").to_list()
        b = Database(STORE).query("E").to_list()
        assert a == b

    def test_pairs_projection(self):
        for backend in sorted(BACKEND_DBS):
            rs = BACKEND_DBS[backend](STORE).query("join[1,2,3'; 3=1'](E, E)")
            assert rs.pairs() == frozenset((s, o) for s, p, o in rs), backend

    def test_windowed_membership(self):
        rs = Database(STORE, backend="columnar").query("E")
        head = rs.limit(2)
        rows = rs.to_list()
        assert rows[0] in head and rows[1] in head
        assert rows[2] not in head

    def test_columnar_iteration_defers_decode(self, monkeypatch):
        from repro.triplestore.columnar import ColumnarStore

        decoded_rows = []
        real = ColumnarStore.decode_list

        def counting(self, keys):
            decoded_rows.append(len(keys))
            return real(self, keys)

        monkeypatch.setattr(ColumnarStore, "decode_list", counting)
        store = transport_network(n_cities=30, n_services=4, n_companies=3, seed=5)
        db = Database(store, backend="columnar")
        rs = db.query("join[1,2,3'; 3=1'](E, E)")
        assert rs.total > 3  # big enough for the window to matter
        rs.limit(3).to_list()
        assert sum(decoded_rows) == 3  # only the shown rows were decoded

    def test_columnar_full_decode_not_triggered_by_len(self, monkeypatch):
        from repro.triplestore.columnar import ColumnarStore

        def forbidden(self, keys):  # pragma: no cover — failing path
            raise AssertionError("len()/limit() must not decode")

        db = Database(STORE, backend="columnar")
        rs = db.query("E")
        monkeypatch.setattr(ColumnarStore, "decode_list", forbidden)
        monkeypatch.setattr(ColumnarStore, "decode_triples", forbidden)
        assert len(rs) == len(STORE.relation("E"))
        assert rs.limit(3).total == len(STORE.relation("E"))

    def test_from_iterable_set_algebra_result_type(self):
        rs = Database(STORE).query("E")
        out = rs & frozenset(list(STORE.relation("E"))[:2])
        assert isinstance(out, ResultSet)

    def test_cache_hits_share_the_rows_payload(self):
        # A repeated query must reuse the cached rows object (and its
        # decoded state), not rebuild and re-decode it per call.
        db = Database(STORE, backend="columnar")
        r1 = db.query("E")
        r2 = db.query("E")
        assert r1._rows is r2._rows
        r1.to_set()
        assert r2._rows._decoded is not None  # decode happened once, shared


# --------------------------------------------------------------------- #
# Relation-aware invalidation + transactional batches
# --------------------------------------------------------------------- #


class TestInvalidationAndBatch:
    def test_install_only_invalidates_dependents(self):
        db = Database(STORE)
        db.query("E")
        db.query("F")
        db.plan("E")
        db.install("F", [("x", "r", "y")])
        # E entries still hit; F entries recompute.
        db.query("E")
        assert db.cache_info()["results"].hits >= 1
        assert db.query("F") == {("x", "r", "y")}

    def test_install_invalidates_plans_of_dependents_only(self):
        db = Database(STORE)
        db.plan("join[1,2,3'; 3=1'](E, E)")
        db.plan("F")
        before = db.cache_info()["plans"]
        db.install("F", [("x", "r", "y")])
        db.plan("join[1,2,3'; 3=1'](E, E)")  # unaffected → hit
        db.plan("F")  # mutated → recompiled
        after = db.cache_info()["plans"]
        assert after.hits == before.hits + 1
        assert after.misses == before.misses + 1

    def test_universe_queries_depend_on_every_mutation(self):
        db = Database(Triplestore([("a", "b", "c")]))
        db.query("U")
        db.install("G", [("a", "b", "a")])
        db.query("U")
        assert db.cache_info()["results"].misses >= 2

    def test_install_on_queried_relation_still_invalidates(self):
        db = Database(STORE)
        first = db.query("E").to_set()
        db.install("E", [("x", "y", "z")])
        assert db.query("E") == {("x", "y", "z")}
        assert db.query("E") != first

    def test_batch_commits_atomically(self):
        db = Database(STORE)
        base_e = db.query("E").to_set()
        with db.batch():
            db.install("Closure", "star[1,2,3'; 3=1'](E)")
            db.install("Extra", [("x", "p", "y")])
            # Staged mutations are invisible inside the batch.
            assert "Closure" not in db.store.relation_names
        assert db.query("Extra") == {("x", "p", "y")}
        assert db.query("Closure").to_set() >= base_e

    def test_batch_rolls_back_on_error(self):
        db = Database(STORE)
        with pytest.raises(ValueError):
            with db.batch():
                db.install("Doomed", [("x", "p", "y")])
                raise ValueError("boom")
        assert "Doomed" not in db.store.relation_names

    def test_nested_batch_rejected(self):
        db = Database(STORE)
        with db.batch():
            with pytest.raises(ReproError):
                with db.batch():
                    pass  # pragma: no cover

    def test_batch_single_invalidation(self):
        db = Database(STORE)
        db.query("E")
        db.query("F")
        with db.batch():
            db.install("A", [("x", "p", "y")])
            db.install("B", [("x", "q", "y")])
        # E and F were untouched by the batch: their entries still hit.
        db.query("E")
        db.query("F")
        assert db.cache_info()["results"].hits >= 2


# --------------------------------------------------------------------- #
# Thread safety
# --------------------------------------------------------------------- #


class TestThreadSafety:
    def test_lru_concurrent_hammer(self):
        lru = _LRU(maxsize=8)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    key = (seed * 7 + i) % 23
                    value = lru.get(key, lambda k=key: k * 2)
                    assert value == key * 2
            except Exception as exc:  # pragma: no cover — failing path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        info = lru.info()
        assert info.size <= 8
        assert info.hits + info.misses == 8 * 500

    def test_concurrent_queries_on_shared_database(self):
        db = Database(STORE, backend="sharded", shards=2)
        expected = db.query("join[1,2,3'; 3=1'](E, E)").to_set()
        errors = []

        def worker() -> None:
            try:
                for _ in range(20):
                    assert db.query("join[1,2,3'; 3=1'](E, E)") == expected
            except Exception as exc:  # pragma: no cover — failing path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


# --------------------------------------------------------------------- #
# Structured explain
# --------------------------------------------------------------------- #


class TestExplainReport:
    def test_report_round_trips_through_json(self):
        db = Database(STORE)
        report = db.explain_report("join[1,2,3'; 3=1'](select[2='p'](E), F)")
        data = json.loads(report.to_json())
        assert data["logical"]["fragment"].startswith("TriAL")
        assert data["statistics"] == {"triples": len(STORE), "objects": STORE.n_objects}
        assert data["plan"]["op"] == "HashJoin"
        kinds = set()

        def walk(node):
            kinds.add(node["op"])
            for child in node.get("children", ()):
                walk(child)

        walk(data["plan"])
        assert {"HashJoin", "IndexLookup", "Scan"} <= kinds

    def test_report_shows_parameters(self):
        report = Database(STORE).explain_report("select[2=$x](E)")
        assert report.parameters == ("x",)
        assert "$x" in report.to_json()

    def test_sharded_report_carries_strategies(self):
        db = Database(STORE, backend="sharded", shards=3)
        data = json.loads(db.explain_report("join[1,2,3'; 3=1'](E, E)").to_json())
        assert data["backend"].startswith("sharded(3-way")
        assert data["plan"]["shard_strategy"]

    def test_columnar_report_carries_star_strategy(self):
        db = Database(STORE, backend="columnar")
        data = json.loads(db.explain_report("star[1,2,3'; 3=1'](E)").to_json())
        assert data["plan"]["op"] == "ReachStar"
        assert data["plan"]["strategy"] in ("dense", "sparse")

    def test_function_form_without_store(self):
        report = explain_report(parse("star[1,2,3'; 3=1'](E)"))
        data = json.loads(report.to_json())
        assert data["statistics"] is None


# --------------------------------------------------------------------- #
# The language registry
# --------------------------------------------------------------------- #


class TestLanguageRegistry:
    def test_registered_languages(self):
        assert {"trial", "datalog", "gxpath", "rpq", "nre", "nsparql"} <= set(LANGUAGES)

    def test_unknown_language_rejected(self):
        with pytest.raises(ReproError, match="unknown query language"):
            Database(STORE).query("E", lang="sql")

    def test_trial_rejects_foreign_ast(self):
        with pytest.raises(AlgebraError):
            Database(STORE).query(12345)

    def test_all_algebraic_languages_share_the_compile_path(self):
        db = Database(figure1())
        db.query("a/b-", lang="gxpath")
        # The translated expression went through the same plan cache.
        assert db.cache_info()["plans"].misses >= 1
