"""E2/E11 — σ-encoding costs and the FO translations in the running.

* σ(D): encoding a document and answering an NRE over it, vs answering
  the equivalent navigation natively on triples (nSPARQL semantics) —
  both answers asserted equal (they must be: Theorem 1's footnote).
* TriAL → FO⁶: translating and evaluating the formula with the
  bottom-up FO evaluator vs evaluating the algebra directly.
"""

import pytest

from repro.core import HashJoinEngine, evaluate, example2_expr
from repro.graphdb import evaluate_nre, parse_nre
from repro.logic import answers
from repro.rdf import RDFGraph, evaluate_nsparql_nre, sigma
from repro.translations import trial_to_fo
from repro.workloads import transport_network

NRE = parse_nre("next.[edge.next].next*")


def _doc(n_cities: int) -> RDFGraph:
    store = transport_network(
        n_cities=n_cities, n_services=4, n_companies=2, seed=n_cities
    )
    return RDFGraph(store.relation("E"))


@pytest.mark.parametrize("n", [20, 60])
def test_sigma_encoding(benchmark, n):
    doc = _doc(n)
    graph = benchmark(lambda: sigma(doc))
    assert len(graph.edges) <= 3 * len(doc)


@pytest.mark.parametrize("n", [20, 60])
def test_nre_over_sigma(benchmark, n):
    doc = _doc(n)
    graph = sigma(doc)
    result = benchmark(lambda: evaluate_nre(graph, NRE))
    assert result == evaluate_nsparql_nre(doc, NRE)


@pytest.mark.parametrize("n", [20, 60])
def test_nsparql_native(benchmark, n):
    doc = _doc(n)
    result = benchmark(lambda: evaluate_nsparql_nre(doc, NRE))
    assert result is not None


@pytest.mark.parametrize("n", [6, 10])
def test_fo6_translation_evaluation(benchmark, n):
    """Theorem 4.1 in the running: answers(ϕ_e) == e(T)."""
    store = transport_network(n_cities=n, n_services=2, n_companies=2, seed=n)
    phi = trial_to_fo(example2_expr())
    direct = evaluate(example2_expr(), store, HashJoinEngine())
    result = benchmark(lambda: answers(phi, store, ("v1", "v2", "v3")))
    assert result == direct
