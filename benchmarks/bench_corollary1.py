"""E10 — Corollary 1: Datalog evaluation tracks the algebra's bounds.

Times a ReachTripleDatalog¬ program (query Q compiled via Theorem 2)
against the equivalent TriAL* expression on the same stores.  The shape
to reproduce: both scale alike (the translations are linear-time, so the
Datalog route costs a constant factor, not a different exponent).
"""

import pytest

from repro.core import HashJoinEngine, evaluate, query_q
from repro.datalog import run_program, trial_to_datalog
from repro.workloads import transport_network

ENGINE = HashJoinEngine()
Q = query_q()
Q_PROGRAM = trial_to_datalog(Q)


def _store(n_cities: int):
    return transport_network(
        n_cities=n_cities,
        n_services=max(2, n_cities // 5),
        n_companies=3,
        extra_routes=n_cities // 2,
        seed=n_cities,
    )


@pytest.mark.parametrize("n_cities", [20, 40, 80])
def test_algebra_route(benchmark, n_cities):
    store = _store(n_cities)
    result = benchmark(lambda: evaluate(Q, store, ENGINE))
    assert result


@pytest.mark.parametrize("n_cities", [20, 40, 80])
def test_datalog_route(benchmark, n_cities):
    store = _store(n_cities)
    result = benchmark(lambda: run_program(Q_PROGRAM, store))
    assert result == evaluate(Q, store, ENGINE)


def test_translation_is_cheap(benchmark):
    """Compiling Q to Datalog is linear in |e| — effectively instant."""
    program = benchmark(lambda: trial_to_datalog(Q))
    assert len(program) >= 5
