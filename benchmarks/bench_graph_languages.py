"""E13 — Theorem 7 / Corollary 2 in the running: graph languages natively
vs through their TriAL* translations.

The paper claims subsumption, not speed — the translations pay for
generality (N/NP materialisation).  The benchmark quantifies that
constant: native GXPath/NRE/RPQ evaluation vs the translated TriAL*
expression on the same graphs, with outputs asserted equal.
"""

import pytest

from repro.core import HashJoinEngine, evaluate, project13
from repro.graphdb import (
    Axis,
    Concat,
    PathComplement,
    StarPath,
    evaluate_gxpath,
    evaluate_nre,
    evaluate_rpq,
    parse_nre,
)
from repro.translations import gxpath_to_trial, nre_to_trial, rpq_to_trial
from repro.workloads import random_graph

ENGINE = HashJoinEngine()

GXPATH_EXPR = Concat(StarPath(Axis("a")), PathComplement(Axis("b")))
NRE_EXPR = parse_nre("a.[b].(a+b)*")
RPQ_TEXT = "(a+b)*.a"


def _graph(n):
    return random_graph(n, n * 3, seed=n)


@pytest.mark.parametrize("n", [10, 20, 40])
def test_gxpath_native(benchmark, n):
    g = _graph(n)
    result = benchmark(lambda: evaluate_gxpath(g, GXPATH_EXPR))
    assert result is not None


@pytest.mark.parametrize("n", [10, 20, 40])
def test_gxpath_via_trial(benchmark, n):
    g = _graph(n)
    t = g.to_triplestore()
    expr = gxpath_to_trial(GXPATH_EXPR)
    result = benchmark(lambda: project13(evaluate(expr, t, HashJoinEngine())))
    assert result == evaluate_gxpath(g, GXPATH_EXPR)


@pytest.mark.parametrize("n", [10, 20, 40])
def test_nre_native(benchmark, n):
    g = _graph(n)
    result = benchmark(lambda: evaluate_nre(g, NRE_EXPR))
    assert result is not None


@pytest.mark.parametrize("n", [10, 20, 40])
def test_nre_via_trial(benchmark, n):
    g = _graph(n)
    t = g.to_triplestore()
    expr = nre_to_trial(NRE_EXPR)
    result = benchmark(lambda: project13(evaluate(expr, t, HashJoinEngine())))
    assert result == evaluate_nre(g, NRE_EXPR)


@pytest.mark.parametrize("n", [10, 20, 40])
def test_rpq_native(benchmark, n):
    g = _graph(n)
    result = benchmark(lambda: evaluate_rpq(g, RPQ_TEXT))
    assert result is not None


@pytest.mark.parametrize("n", [10, 20, 40])
def test_rpq_via_trial(benchmark, n):
    g = _graph(n)
    t = g.to_triplestore()
    expr = rpq_to_trial(RPQ_TEXT)
    result = benchmark(lambda: project13(evaluate(expr, t, HashJoinEngine())))
    assert result == evaluate_rpq(g, RPQ_TEXT)
