"""E1/E4–E6: the paper's worked queries on Figure 1 and scaled variants.

Regenerates (as timed runs with verified outputs):
* Example 2's join and its extension e′;
* Example 3's left/right Kleene closures;
* Example 4's Reach→/Reach⤓;
* query Q on Figure 1 and on transport networks of growing size.
"""

import pytest

from repro.core import (
    HashJoinEngine,
    evaluate,
    example2_expr,
    example2_extended,
    example3_left,
    example3_right,
    query_q,
    reach_down,
    reach_forward,
)
from repro.rdf.datasets import (
    EXAMPLE2_EXPECTED,
    EXAMPLE3_LEFT_EXPECTED,
    EXAMPLE3_RIGHT_EXPECTED,
    example3_store,
    figure1,
)
from repro.workloads import transport_network

ENGINE = HashJoinEngine()
FIG1 = figure1()
EX3 = example3_store()


def test_example2_join(benchmark):
    result = benchmark(lambda: evaluate(example2_expr(), FIG1, ENGINE))
    assert result == EXAMPLE2_EXPECTED


def test_example2_extended(benchmark):
    result = benchmark(lambda: evaluate(example2_extended(), FIG1, ENGINE))
    assert len(result) == 4


def test_example3_right_star(benchmark):
    result = benchmark(lambda: evaluate(example3_right(), EX3, ENGINE))
    assert result == EXAMPLE3_RIGHT_EXPECTED


def test_example3_left_star(benchmark):
    result = benchmark(lambda: evaluate(example3_left(), EX3, ENGINE))
    assert result == EXAMPLE3_LEFT_EXPECTED


def test_reach_forward(benchmark):
    result = benchmark(lambda: evaluate(reach_forward(), FIG1, ENGINE))
    assert ("St. Andrews", "Bus Op 1", "London") in result


def test_reach_down(benchmark):
    result = benchmark(lambda: evaluate(reach_down(), FIG1, ENGINE))
    assert result  # nonempty on Figure 1


def test_query_q_figure1(benchmark):
    result = benchmark(lambda: evaluate(query_q(), FIG1, ENGINE))
    assert ("Edinburgh", "Train Op 1", "London") in result


@pytest.mark.parametrize("n_cities", [20, 60, 120])
def test_query_q_scaled(benchmark, n_cities):
    store = transport_network(
        n_cities=n_cities,
        n_services=max(2, n_cities // 5),
        n_companies=3,
        extra_routes=n_cities // 2,
        seed=n_cities,
    )
    result = benchmark(lambda: evaluate(query_q(), store, ENGINE))
    assert result
