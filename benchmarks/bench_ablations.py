"""Ablation benchmarks for the design choices called out in DESIGN.md.

* optimiser on/off — selection pushing shrinks hash-join inputs;
* memoisation on/off — shared subexpressions (query Q's inner star
  appears once, but generated DAGs repeat subtrees);
* semi-naive vs paper-naive fixpoints — the cost of Procedure 2's full
  re-join, isolated from the join algorithm (both sides use hash joins).
"""

import pytest

from repro.core import HashJoinEngine, NaiveEngine, R, Union, evaluate, join, select, star
from repro.core.optimizer import optimize
from repro.workloads import chain_store, random_store

ENGINE = HashJoinEngine()

#: A query shaped to benefit from pushing: selection over a wide join.
PUSHABLE = select(
    join(R("E"), R("E"), "1,2,3'", "rho(1)=rho(1')"),
    "2='l0'",
)


@pytest.mark.parametrize("optimized", [False, True], ids=["raw", "optimized"])
def test_selection_pushing(benchmark, optimized):
    store = random_store(40, 900, seed=5)
    expr = optimize(PUSHABLE) if optimized else PUSHABLE
    result = benchmark(lambda: evaluate(expr, store, ENGINE))
    assert result == evaluate(PUSHABLE, store, ENGINE)


def _shared_subtree_query():
    base = join(R("E"), R("E"), "1,2,3'", "3=1'")
    layered = base
    for _ in range(4):
        layered = Union(join(layered, base, "1,2,3'", "3=1'"), base)
    return layered


def test_memoised_dag(benchmark):
    """The hash engine evaluates each distinct subtree once."""
    store = random_store(30, 400, seed=11)
    expr = _shared_subtree_query()
    result = benchmark(lambda: evaluate(expr, store, ENGINE))
    assert result


def test_unmemoised_dag_baseline(benchmark):
    """The naive engine re-evaluates shared subtrees — the ablation."""
    store = random_store(18, 120, seed=11)
    expr = _shared_subtree_query()
    result = benchmark(lambda: evaluate(expr, store, NaiveEngine()))
    assert result


REACH = star(R("E"), "1,2,3'", "3=1'")


@pytest.mark.parametrize("n", [40, 80])
def test_semi_naive_fixpoint(benchmark, n):
    store = chain_store(n)
    result = benchmark(lambda: evaluate(REACH, store, ENGINE))
    assert len(result) == n * (n + 1) // 2


@pytest.mark.parametrize("n", [40, 80])
def test_full_rejoin_fixpoint(benchmark, n):
    """Procedure 2's re-join of the whole accumulator each round."""
    store = chain_store(n)
    result = benchmark(lambda: evaluate(REACH, store, NaiveEngine()))
    assert len(result) == n * (n + 1) // 2
