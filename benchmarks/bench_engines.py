"""Engine shoot-out on a common workload mix (the substitution study).

The engines compete as backends for the paper's future-work question
("can existing systems implement this recursion efficiently?").  This
benchmark runs one mixed workload — selections, joins with η-conditions,
a reach star and a complement — through every engine, and additionally
records two A/B comparisons:

* the cost-based planner path against the legacy direct interpreter
  (``use_planner=False``) → ``BENCH_PLANNER.json``;
* the vectorised columnar backend (:class:`VectorEngine`) against the
  set backend (:class:`FastEngine`) on join-heavy and star-heavy
  workloads → ``BENCH_VECTOR.json``;
* the shard × executor sweep: the hash-sharded backend
  (:class:`ShardedEngine`) at ``shards ∈ {4, 8}`` under both shard
  executors (in-process threads and the cross-process worker pool with
  shared-memory stores) against the same engine at ``shards=1`` (one
  shard = the degenerate unsharded run through identical code, so the
  sweep isolates exactly what partitioning and the worker pool buy),
  cross-checked against the cubic :class:`NaiveEngine` oracle on
  size-capped replica stores → ``BENCH_SHARD.json``.

::

    PYTHONPATH=src python benchmarks/bench_engines.py   # writes all three JSONs
    PYTHONPATH=src python -m pytest benchmarks/bench_engines.py  # full shoot-out
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import compare, format_table, write_bench_json
from repro.core import (
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    R,
    ShardedEngine,
    VectorEngine,
    complement,
    evaluate,
    join,
    select,
    star,
)
from repro.workloads import random_store

WORKLOAD = [
    select(R("E"), "2='l0' & rho(1)=rho(3)"),
    join(R("E"), R("E"), "1,2,3'", "3=1' & rho(2)=rho(2')"),
    star(R("E"), "1,2,3'", "3=1'"),
    join(R("E"), R("E"), "1,1',3", "1!=1'"),
]

ENGINES = {
    "naive-theorem3": NaiveEngine(),
    "hash-join": HashJoinEngine(),
    "hash-join-legacy": HashJoinEngine(use_planner=False),
    "fast-prop5": FastEngine(),
    "fast-prop5-legacy": FastEngine(use_planner=False),
    "vector-columnar": VectorEngine(),
    "sharded-4": ShardedEngine(shards=4),
}

#: Planner-vs-legacy comparison queries.  The join-heavy entries are the
#: ones the physical planner is supposed to win: index-served selections,
#: small-probe joins against an indexed base scan, join chains and
#: fixpoints with the constant operand's hash table hoisted.
PLANNER_WORKLOAD = {
    "indexed-select": select(R("E"), "2='l0' & rho(1)=rho(3)"),
    "small-probe-join": join(
        select(R("E"), "2='l0'"), R("E"), "1,2,3'", "3=1'"
    ),
    "join-chain": join(
        join(R("E"), R("E"), "1,2,3'", "3=1'"), R("E"), "1,2,3'", "3=1'"
    ),
    "eta-join": join(R("E"), R("E"), "1,2,3'", "3=1' & rho(2)=rho(2')"),
    "general-star": star(R("E"), "1,2,2'", "3=1'"),
}


#: Set-vs-columnar comparison queries.  The join-heavy entries stress the
#: searchsorted merge join over large probe/build sides; the star-heavy
#: entries stress the fixpoint machinery (dense boolean-matrix closure
#: for the reach shapes, semi-naive columnar joins for the general star).
VECTOR_WORKLOAD = {
    "join-chain": join(
        join(R("E"), R("E"), "1,2,3'", "3=1'"), R("E"), "1,2,3'", "3=1'"
    ),
    "eta-join": join(R("E"), R("E"), "1,2,3'", "3=1' & rho(2)=rho(2')"),
    "neq-join": join(R("E"), R("E"), "1,1',3", "1!=1'"),
    "reach-star-any": star(R("E"), "1,2,3'", "3=1'"),
    "reach-star-same-label": star(R("E"), "1,2,3'", "3=1' & 2=2'"),
    "general-star": star(R("E"), "1,2,2'", "3=1'"),
}

#: Which VECTOR_WORKLOAD entries the columnar backend must not lose on.
VECTOR_JOIN_HEAVY = ("join-chain", "eta-join", "neq-join")
VECTOR_STAR_HEAVY = ("reach-star-any", "reach-star-same-label", "general-star")


#: Shard-sweep queries: ``name -> (expression, store factory, oracle
#: store factory)``.
#:
#: Every query wraps its result in a selective filter so the timings
#: measure execution, not the final decode to Python triples (which is
#: identical on both sides and would otherwise dominate the ratio).
#: The join-heavy entries are where partitioning pays: the
#: co-partitioned join runs shard against shard with no exchange (both
#: scans are subject-partitioned and the key is 1=1'), the repartition
#: join pays one exchange, the chain keeps its heavy intermediates
#: sharded end to end (lazy re-partitioning: the lost join key never
#: forces a merge), and the η join exchanges both sides on ρ-codes —
#: its store uses 4000 data-value classes so the η key is selective.
#: Their stores hold 130k–160k triples so the cross-process executor
#: amortises its pipe/shm overheads the way real workloads would.
#: The star entries guard the fixpoints: a sparse reach star (the store
#: is sized above the dense-matrix guard) and a general star, both
#: paying per-round frontier exchanges — sharding's worst case.  Both
#: star stores sit just above the dispatch threshold so the process
#: executor genuinely engages instead of falling back to threads.
#:
#: The third tuple element builds a small replica of the same shape —
#: the cubic :class:`NaiveEngine` (the paper's Theorem 3 semantics)
#: evaluates it as an oracle, so a bug that made every executor agree
#: on the wrong answer still fails the sweep.
SHARD_WORKLOAD = {
    "co-partitioned-join": (
        select(join(R("E"), R("E"), "1,2,3'", "1=1'"), "1=3"),
        lambda: random_store(4000, 160000, seed=29),
        lambda: random_store(40, 300, seed=29),
    ),
    "repartition-join": (
        select(join(R("E"), R("E"), "1,2,3'", "3=1'"), "1=3"),
        lambda: random_store(4000, 160000, seed=29),
        lambda: random_store(40, 300, seed=29),
    ),
    "join-chain": (
        select(
            join(
                join(R("E"), R("E"), "1,2,3'", "3=1'"), R("E"), "1,2,3'", "3=1'"
            ),
            "1=3",
        ),
        lambda: random_store(13000, 130000, seed=29),
        lambda: random_store(40, 300, seed=29),
    ),
    "eta-join": (
        select(join(R("E"), R("E"), "1,2,3'", "rho(3)=rho(1')"), "1=3"),
        lambda: random_store(4000, 160000, data_values=range(4000), seed=37),
        lambda: random_store(40, 300, data_values=range(40), seed=37),
    ),
    "reach-star-sparse": (
        select(star(R("E"), "1,2,3'", "3=1'"), "1=3"),
        lambda: random_store(600, 4500, seed=31),
        lambda: random_store(40, 220, seed=31),
    ),
    "general-star": (
        select(star(R("E"), "1,2,2'", "3=1'"), "1=3"),
        lambda: random_store(200, 4500, seed=31),
        lambda: random_store(30, 200, seed=31),
    ),
}

#: The entries the sharded backend exists for (hard ≥1x wins required).
SHARD_JOIN_HEAVY = (
    "co-partitioned-join",
    "repartition-join",
    "join-chain",
    "eta-join",
)

#: Shard counts swept against the shards=1 baseline.
SHARD_COUNTS = (4, 8)

#: Executors swept at each shard count: in-process thread tasks and the
#: cross-process worker pool (shared-memory store attach, all-to-all
#: shm exchange).  On a single-core host the process executor still
#: wins the join-heavy group — the partitioning gains are algorithmic —
#: but its parallel headroom only shows with real cores; the recorded
#: JSON carries ``cpu_count`` so readers can judge the magnitudes.
SHARD_EXECUTORS = ("thread", "process")


@pytest.mark.parametrize("engine_name", list(ENGINES))
def test_mixed_workload(benchmark, engine_name):
    engine = ENGINES[engine_name]
    store = random_store(40, 500, seed=17)

    def run():
        return [evaluate(expr, store, engine) for expr in WORKLOAD]

    results = benchmark(run)
    reference = [evaluate(expr, store, HashJoinEngine()) for expr in WORKLOAD]
    assert results == reference


@pytest.mark.parametrize("engine_name", ["hash-join", "fast-prop5"])
def test_complement_workload(benchmark, engine_name):
    """U-based complement (cubic) — naive engine excluded by size."""
    engine = ENGINES[engine_name]
    store = random_store(15, 120, seed=3)
    expr = complement(R("E"))
    result = benchmark(lambda: evaluate(expr, store, engine))
    assert len(result) == len(engine.active_domain(store)) ** 3 - len(
        store.relation("E")
    )


def run_planner_comparison(repeats: int = 7):
    """Time every PLANNER_WORKLOAD query planner-on vs planner-off.

    Both paths are timed cold-started (fresh engines; the comparison's
    candidate-first order charges one-time setup to the planner side)
    and cross-checked for equal results afterwards.
    """
    store = random_store(40, 500, seed=17)
    comparisons = []
    for name, expr in PLANNER_WORKLOAD.items():
        planner = HashJoinEngine(use_planner=True)
        legacy = HashJoinEngine(use_planner=False)
        comparisons.append(
            compare(
                name,
                baseline=lambda: legacy.evaluate(expr, store),
                candidate=lambda: planner.evaluate(expr, store),
                repeats=repeats,
            )
        )
        assert planner.evaluate(expr, store) == legacy.evaluate(expr, store)
    return comparisons


def run_vector_comparison(repeats: int = 7):
    """Time every VECTOR_WORKLOAD query on the set vs columnar backends.

    Both sides run planner-compiled plans; only the execution
    representation differs.  The candidate (columnar) runs first, so its
    one-time costs — plan compilation and the store's packed-array
    encoding — land in its own repeat sequence and are discarded by
    best-of-N along with the set side's warm-up.
    """
    store = random_store(120, 2400, seed=23)
    comparisons = []
    for name, expr in VECTOR_WORKLOAD.items():
        set_engine = FastEngine()
        vector_engine = VectorEngine()
        comparisons.append(
            compare(
                name,
                baseline=lambda: set_engine.evaluate(expr, store),
                candidate=lambda: vector_engine.evaluate(expr, store),
                repeats=repeats,
            )
        )
        assert vector_engine.evaluate(expr, store) == set_engine.evaluate(expr, store)
    return comparisons


def run_shard_comparison(
    shard_counts=SHARD_COUNTS,
    executors=SHARD_EXECUTORS,
    repeats: int = 5,
):
    """Time every SHARD_WORKLOAD query per (shard count, executor) vs shards=1.

    The baseline is the *same* sharded executor with one shard — the
    degenerate unsharded run through identical code — so speedups
    measure partitioning (and, for ``executor="process"``, the worker
    pool) itself, not engine plumbing.  Each store's partition and shm
    publication are cached (steady state, like the other comparisons)
    and results are cross-checked two ways: every candidate against the
    single-shard result on the full store, and every (shard count,
    executor) configuration against :class:`NaiveEngine` — the paper's
    Theorem 3 semantics, cubic, hence size-capped — on a small replica
    of the same store shape, with the dispatch threshold forced down so
    the process path genuinely runs there.
    """
    oracle = NaiveEngine()
    comparisons = []
    for name, (expr, make_store, make_oracle_store) in SHARD_WORKLOAD.items():
        small = make_oracle_store()
        expected = oracle.evaluate(expr, small)
        store = make_store()
        baseline = ShardedEngine(shards=1)
        base_result = baseline.evaluate(expr, store)
        for k in shard_counts:
            for executor in executors:
                candidate = ShardedEngine(shards=k, executor=executor)
                checker = ShardedEngine(shards=k, executor=executor, dispatch_min=0)
                assert checker.evaluate(expr, small) == expected, (
                    f"{name}@shards={k},{executor} disagrees with NaiveEngine"
                )
                comparisons.append(
                    compare(
                        f"{name}@shards={k},{executor}",
                        baseline=lambda: baseline.evaluate(expr, store),
                        candidate=lambda: candidate.evaluate(expr, store),
                        repeats=repeats,
                    )
                )
                assert candidate.evaluate(expr, store) == base_result
    return comparisons


def test_sharded_backend_not_slower_than_single_shard():
    """Sharding must not regress, and the join-heavy queries must win.

    Same methodology and noise allowance as the other two comparisons:
    15% tolerance on every (workload, shard count) pair, best of three
    attempts, with a hard ≥1x win required on the join-heavy group at
    shards=4 — the queries the sharded backend exists for.
    BENCH_SHARD.json records the magnitudes.
    """

    def attempt() -> list[str]:
        comparisons = run_shard_comparison(
            shard_counts=(4,), executors=("thread",), repeats=3
        )
        failures = [
            f"{c.name}: sharded {c.candidate_seconds:.6f}s vs "
            f"single-shard {c.baseline_seconds:.6f}s"
            for c in comparisons
            if c.candidate_seconds > c.baseline_seconds * 1.15
        ]
        by_name = {c.name: c for c in comparisons}
        if not any(
            by_name[f"{name}@shards=4,thread"].speedup >= 1.0
            for name in SHARD_JOIN_HEAVY
        ):
            failures.append(f"no ≥1x win in {'/'.join(SHARD_JOIN_HEAVY)}")
        return failures

    failures: list[str] = []
    for _ in range(3):
        failures = attempt()
        if not failures:
            return
    raise AssertionError("; ".join(failures))


def test_process_executor_not_slower_on_join_heavy():
    """The cross-process worker pool must win where sharding wins.

    Same methodology as the thread guard: 15% tolerance on the
    join-heavy pairs, best of three attempts, a hard ≥1x win required
    at shards=4.  The star fixpoints are recorded in BENCH_SHARD.json
    but not asserted for the process executor — per-round frontier
    exchanges over pipes are sharding's worst case and genuinely
    hardware-dependent.  Gated on host parallelism: with a single core
    the pool runs its workers time-sliced and the comparison measures
    scheduler noise, and the ≥2.5x bar at shards=8 only makes sense
    with eight cores to run on.
    """
    ncpu = os.cpu_count() or 1
    if ncpu < 2:
        pytest.skip("process-executor speedup guard needs >=2 cores")

    def attempt() -> list[str]:
        comparisons = run_shard_comparison(
            shard_counts=(4, 8), executors=("process",), repeats=3
        )
        by_name = {c.name: c for c in comparisons}
        failures = [
            f"{c.name}: process {c.candidate_seconds:.6f}s vs "
            f"single-shard {c.baseline_seconds:.6f}s"
            for c in comparisons
            if c.name.split("@")[0] in SHARD_JOIN_HEAVY
            and c.candidate_seconds > c.baseline_seconds * 1.15
        ]
        if not any(
            by_name[f"{name}@shards=4,process"].speedup >= 1.0
            for name in SHARD_JOIN_HEAVY
        ):
            failures.append(f"no ≥1x win in {'/'.join(SHARD_JOIN_HEAVY)}")
        if ncpu >= 8 and not any(
            by_name[f"{name}@shards=8,process"].speedup >= 2.5
            for name in SHARD_JOIN_HEAVY
        ):
            failures.append(
                f"no ≥2.5x win at shards=8 in {'/'.join(SHARD_JOIN_HEAVY)}"
            )
        return failures

    failures: list[str] = []
    for _ in range(3):
        failures = attempt()
        if not failures:
            return
    raise AssertionError("; ".join(failures))


def test_vector_backend_not_slower_than_set():
    """The columnar backend must not lose to the set backend.

    Same methodology (and the same noise allowance) as the planner
    comparison below: 15% tolerance, best of three attempts, with hard
    ≥1x wins required on the join-heavy and star-heavy groups that the
    vectorised executor exists for.  BENCH_VECTOR.json records the
    magnitudes.
    """

    def attempt() -> list[str]:
        comparisons = run_vector_comparison()
        failures = [
            f"{c.name}: columnar {c.candidate_seconds:.6f}s vs "
            f"set {c.baseline_seconds:.6f}s"
            for c in comparisons
            if c.candidate_seconds > c.baseline_seconds * 1.15
        ]
        by_name = {c.name: c for c in comparisons}
        for group in (VECTOR_JOIN_HEAVY, VECTOR_STAR_HEAVY):
            if not any(by_name[name].speedup >= 1.0 for name in group):
                failures.append(f"no ≥1x win in {'/'.join(group)}")
        return failures

    failures: list[str] = []
    for _ in range(3):
        failures = attempt()
        if not failures:
            return
    raise AssertionError("; ".join(failures))


def test_planner_not_slower_than_legacy():
    """The planner path must not lose to the legacy interpreter.

    Wall-clock ratios on sub-millisecond queries are noisy (GC pauses,
    CPU steal on shared CI runners), so the bound allows 15% and the
    whole comparison gets three attempts — a genuine regression fails
    all of them; see BENCH_PLANNER.json for the recorded magnitudes.
    """

    def attempt() -> list[str]:
        comparisons = run_planner_comparison()
        by_name = {c.name: c for c in comparisons}
        failures = [
            f"{c.name}: planner {c.candidate_seconds:.6f}s vs "
            f"legacy {c.baseline_seconds:.6f}s"
            for c in comparisons
            if c.candidate_seconds > c.baseline_seconds * 1.15
        ]
        for join_heavy in ("indexed-select", "small-probe-join"):
            if by_name[join_heavy].speedup <= 1.2:
                failures.append(f"{join_heavy}: no win ({by_name[join_heavy].speedup:.2f}x)")
        return failures

    failures: list[str] = []
    for _ in range(3):
        failures = attempt()
        if not failures:
            return
    raise AssertionError("; ".join(failures))


def main() -> int:
    comparisons = run_planner_comparison()
    write_bench_json(
        "BENCH_PLANNER.json",
        comparisons,
        meta={
            "benchmark": "planner-on vs planner-off (legacy interpreter)",
            "store": "random_store(40 objects, 500 triples, seed=17)",
            "baseline": "HashJoinEngine(use_planner=False)",
            "candidate": "HashJoinEngine(use_planner=True)",
            "method": "best-of-7 wall time per side (steady state; candidate timed first and charged its own warm-up)",
        },
    )
    print(
        format_table(
            [
                (c.name, f"{c.baseline_seconds * 1e3:.2f}", f"{c.candidate_seconds * 1e3:.2f}", f"{c.speedup:.2f}x")
                for c in comparisons
            ],
            headers=["query", "legacy ms", "planner ms", "speedup"],
        )
    )
    print("wrote BENCH_PLANNER.json")

    vector = run_vector_comparison()
    write_bench_json(
        "BENCH_VECTOR.json",
        vector,
        meta={
            "benchmark": "set backend vs vectorised columnar backend",
            "store": "random_store(120 objects, 2400 triples, seed=23)",
            "baseline": "FastEngine() (planner-compiled plans, set execution)",
            "candidate": "VectorEngine() (same plans, packed-array execution)",
            "method": "best-of-7 wall time per side (steady state; candidate timed first and charged plan compilation + columnar encoding to its own warm-up)",
        },
    )
    print()
    print(
        format_table(
            [
                (c.name, f"{c.baseline_seconds * 1e3:.2f}", f"{c.candidate_seconds * 1e3:.2f}", f"{c.speedup:.2f}x")
                for c in vector
            ],
            headers=["query", "set ms", "columnar ms", "speedup"],
        )
    )
    print("wrote BENCH_VECTOR.json")

    shard = run_shard_comparison()
    write_bench_json(
        "BENCH_SHARD.json",
        shard,
        meta={
            "benchmark": "shard x executor sweep: hash-sharded backend vs single shard",
            "store": "per-workload random_store (join-heavy: 130k-160k triples; see SHARD_WORKLOAD)",
            "baseline": "ShardedEngine(shards=1) (degenerate unsharded run, same code path)",
            "candidate": "ShardedEngine(shards=k, executor=e) for k in (4, 8), e in (thread, process), subject-partitioned",
            "oracle": "NaiveEngine (Theorem 3 semantics, cubic) on a size-capped replica of each store shape, dispatch threshold forced down so the process path runs",
            "cpu_count": os.cpu_count(),
            "method": "best-of-5 wall time per side (steady state; cached store partitions and shm publications; selective outputs so decode does not dominate; candidate timed first and charged its own warm-up)",
        },
    )
    print()
    print(
        format_table(
            [
                (c.name, f"{c.baseline_seconds * 1e3:.2f}", f"{c.candidate_seconds * 1e3:.2f}", f"{c.speedup:.2f}x")
                for c in shard
            ],
            headers=["query", "1 shard ms", "sharded ms", "speedup"],
        )
    )
    print("wrote BENCH_SHARD.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
