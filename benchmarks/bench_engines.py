"""Engine shoot-out on a common workload mix (the substitution study).

DESIGN.md frames the three engines as competing backends for the
paper's future-work question ("can existing systems implement this
recursion efficiently?").  This benchmark runs one mixed workload —
selections, joins with η-conditions, a reach star and a complement —
through every engine.
"""

import pytest

from repro.core import (
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    R,
    complement,
    evaluate,
    join,
    select,
    star,
)
from repro.workloads import random_store

WORKLOAD = [
    select(R("E"), "2='l0' & rho(1)=rho(3)"),
    join(R("E"), R("E"), "1,2,3'", "3=1' & rho(2)=rho(2')"),
    star(R("E"), "1,2,3'", "3=1'"),
    join(R("E"), R("E"), "1,1',3", "1!=1'"),
]

ENGINES = {
    "naive-theorem3": NaiveEngine(),
    "hash-join": HashJoinEngine(),
    "fast-prop5": FastEngine(),
}


@pytest.mark.parametrize("engine_name", list(ENGINES))
def test_mixed_workload(benchmark, engine_name):
    engine = ENGINES[engine_name]
    store = random_store(40, 500, seed=17)

    def run():
        return [evaluate(expr, store, engine) for expr in WORKLOAD]

    results = benchmark(run)
    reference = [evaluate(expr, store, HashJoinEngine()) for expr in WORKLOAD]
    assert results == reference


@pytest.mark.parametrize("engine_name", ["hash-join", "fast-prop5"])
def test_complement_workload(benchmark, engine_name):
    """U-based complement (cubic) — naive engine excluded by size."""
    engine = ENGINES[engine_name]
    store = random_store(15, 120, seed=3)
    expr = complement(R("E"))
    result = benchmark(lambda: evaluate(expr, store, engine))
    assert len(result) == len(engine.active_domain(store)) ** 3 - len(
        store.relation("E")
    )
