"""E8/E9 — Propositions 4 and 5: the O(|e|·|O|·|T|) fragment algorithms.

Two comparisons, each a sweep over |T|:

* equality-only joins: HashJoinEngine (hash keyed on the equality, the
  Prop 4 regime) vs the NaiveEngine's unconditional pairwise loop;
* the two reach stars: FastEngine's per-source BFS (Procedures 3–4)
  vs the generic semi-naive fixpoint vs the naive full-re-join fixpoint.

The paper's claim to reproduce: the fragment algorithms' advantage
*grows* with size — they are asymptotically, not just constant-factor,
faster.
"""

import pytest

from repro.core import FastEngine, HashJoinEngine, NaiveEngine, R, evaluate, join, star
from repro.workloads import chain_store, random_store

EQ_JOIN = join(R("E"), R("E"), "1,2,3'", "3=1'")
REACH_ANY = star(R("E"), "1,2,3'", "3=1'")
REACH_LABEL = star(R("E"), "1,2,3'", "3=1' & 2=2'")

FAST = FastEngine()
HASH = HashJoinEngine()
NAIVE = NaiveEngine()


@pytest.mark.parametrize("n_triples", [200, 400, 800])
@pytest.mark.parametrize(
    "engine", [HASH, NAIVE], ids=["prop4-hash", "theorem3-naive"]
)
def test_equality_join(benchmark, engine, n_triples):
    store = random_store(n_triples // 10, n_triples, seed=n_triples)
    result = benchmark(lambda: evaluate(EQ_JOIN, store, engine))
    assert result is not None


@pytest.mark.parametrize("n", [60, 120, 240])
@pytest.mark.parametrize(
    "engine", [FAST, HASH], ids=["prop5-bfs", "generic-fixpoint"]
)
def test_reach_any_star(benchmark, engine, n):
    store = chain_store(n)
    result = benchmark(lambda: evaluate(REACH_ANY, store, engine))
    assert len(result) == n * (n + 1) // 2


@pytest.mark.parametrize("n", [60, 120, 240])
@pytest.mark.parametrize(
    "engine", [FAST, HASH], ids=["prop5-bfs", "generic-fixpoint"]
)
def test_reach_same_label_star(benchmark, engine, n):
    store = chain_store(n, label_cycle=3)
    result = benchmark(lambda: evaluate(REACH_LABEL, store, engine))
    assert result is not None


@pytest.mark.parametrize("n", [40, 80])
def test_naive_star_baseline(benchmark, n):
    """The Theorem 3 fixpoint on the same chains, for the crossover plot."""
    store = chain_store(n)
    result = benchmark(lambda: evaluate(REACH_ANY, store, NAIVE))
    assert len(result) == n * (n + 1) // 2
