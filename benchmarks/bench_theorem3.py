"""E7 — Theorem 3: TriAL joins in O(|e|·|T|²), TriAL* in O(|e|·|T|³).

The sweep times the paper-faithful NaiveEngine (Procedure 1 joins,
Procedure 2 full-re-join stars) on random stores of growing |T| and on
chains (the star's worst-ish case).  The shape to reproduce: join cost
grows ~quadratically with |T|, star cost clearly faster than the join's,
and both scale linearly in expression size |e|.
"""

import pytest

from repro.core import NaiveEngine, R, evaluate, join, star, union_all
from repro.workloads import chain_store, random_store

ENGINE = NaiveEngine()
JOIN = join(R("E"), R("E"), "1,2,3'", "3=1'")
STAR = star(R("E"), "1,2,3'", "3=1'")


@pytest.mark.parametrize("n_triples", [100, 200, 400, 800])
def test_naive_join_sweep(benchmark, n_triples):
    """Procedure 1 over growing |T| (slope ≈ 2 expected)."""
    store = random_store(max(8, n_triples // 12), n_triples, seed=n_triples)
    result = benchmark(lambda: evaluate(JOIN, store, ENGINE))
    assert result is not None


@pytest.mark.parametrize("n", [16, 32, 64])
def test_naive_star_sweep(benchmark, n):
    """Procedure 2 on a chain (quadratic output forces many rounds)."""
    store = chain_store(n)
    result = benchmark(lambda: evaluate(STAR, store, ENGINE))
    assert len(result) == n * (n + 1) // 2


@pytest.mark.parametrize("width", [1, 2, 4, 8])
def test_expression_size_linearity(benchmark, width):
    """|e|-linearity: a union of `width` copies of the same join."""
    store = random_store(20, 300, seed=9)
    # Distinct selects prevent memoisation from collapsing the copies.
    exprs = [
        join(R("E"), R("E"), "1,2,3'", f"3=1' & 1!='nonexistent{i}'")
        for i in range(width)
    ]
    expr = union_all(exprs)
    result = benchmark(lambda: evaluate(expr, store, ENGINE))
    assert result is not None
