"""The §7 n-ary algebra: cost of generality across arities.

Three measurements:

* the k = 2 transitive closure vs the triple algebra's reach star on
  the same underlying chain (binary data is strictly cheaper — fewer
  positions hashed per tuple);
* the k = 3 n-ary engine vs the TriAL HashJoinEngine on identical
  queries (the n-ary engine is arity-generic, so this prices the
  abstraction);
* join cost growth as arity rises at fixed tuple count.
"""

import pytest

from repro.core import HashJoinEngine, R, evaluate, star
from repro.nary import NCond, NJoin, NRel, NStar, NaryEngine, NaryStore, transitive_closure
from repro.workloads import chain_store

NARY = NaryEngine()
TRIAL = HashJoinEngine()


def _binary_chain(n: int) -> NaryStore:
    return NaryStore(2, {"R": [(f"o{i}", f"o{i+1}") for i in range(n)]})


@pytest.mark.parametrize("n", [50, 100])
def test_binary_transitive_closure(benchmark, n):
    store = _binary_chain(n)
    expr = transitive_closure(NRel("R", 2))
    result = benchmark(lambda: NARY.evaluate(expr, store))
    assert len(result) == n * (n + 1) // 2


@pytest.mark.parametrize("n", [50, 100])
def test_ternary_reach_star_nary(benchmark, n):
    store = NaryStore.from_triplestore(chain_store(n))
    expr = NStar(NRel("E", 3), (0, 1, 5), (NCond(2, 3),), "right")
    result = benchmark(lambda: NARY.evaluate(expr, store))
    assert len(result) == n * (n + 1) // 2


@pytest.mark.parametrize("n", [50, 100])
def test_ternary_reach_star_trial(benchmark, n):
    store = chain_store(n)
    expr = star(R("E"), "1,2,3'", "3=1'")
    result = benchmark(lambda: evaluate(expr, store, TRIAL))
    assert len(result) == n * (n + 1) // 2


@pytest.mark.parametrize("arity", [2, 3, 4, 5])
def test_join_cost_by_arity(benchmark, arity):
    """Composition-style join at growing arity, 300 tuples each."""
    rows = [
        tuple([f"o{i}"] + [f"m{i}_{j}" for j in range(arity - 2)] + [f"o{i+1}"])
        for i in range(300)
    ]
    store = NaryStore(arity, {"R": rows})
    out = tuple(list(range(arity - 1)) + [2 * arity - 1])
    expr = NJoin(NRel("R", arity), NRel("R", arity), out, (NCond(arity - 1, arity),))
    result = benchmark(lambda: NARY.evaluate(expr, store))
    assert len(result) == 299
