"""Benchmark-suite configuration: make the in-tree package importable."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))
