"""Ensure the in-tree package is importable even without installation.

``pip install -e .`` needs the ``wheel`` package under the pinned
setuptools in some offline environments; adding ``src`` to ``sys.path``
here makes ``pytest tests/ benchmarks/`` work from a plain checkout
(``python setup.py develop`` also works).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
