"""Ensure the in-tree package is importable even without installation.

``pip install -e .`` needs the ``wheel`` package under the pinned
setuptools in some offline environments; adding ``src`` to ``sys.path``
here makes ``pytest tests/ benchmarks/`` work from a plain checkout
(``python setup.py develop`` also works).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

# Static plan verification is on for the whole test run (every compiled
# plan is checked against the repro.analysis invariants) unless the
# environment explicitly opts out, e.g. ``REPRO_PLAN_VERIFY=0`` to
# benchmark the unverified hot path.
os.environ.setdefault("REPRO_PLAN_VERIFY", "1")
