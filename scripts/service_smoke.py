"""End-to-end smoke test for the query service (the CI service-smoke job).

Starts a real :class:`~repro.service.server.QueryServer` over a
generated store, drives it the way a deployment would — HTTP queries,
prepared statements, WebSocket streaming, an injected failure, a
metrics scrape — then shuts down cleanly and verifies nothing leaked
(no hung threads, no ``/dev/shm`` segments from process-sharded
tenants).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py --executor thread
    PYTHONPATH=src python scripts/service_smoke.py --executor process
"""

from __future__ import annotations

import argparse
import os
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engines import procpool  # noqa: E402
from repro.core.engines.sharded import ShardedEngine  # noqa: E402
from repro.db import Database  # noqa: E402
from repro.errors import RemoteError  # noqa: E402
from repro.service import (  # noqa: E402
    QueryServer,
    ServiceClient,
    ServiceConfig,
)
from repro.service.metrics import parse_exposition  # noqa: E402
from repro.workloads.generators import random_store  # noqa: E402


def _dev_shm_entries() -> set:
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {n for n in names if n.startswith("repro-")}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="shard executor for the sharded tenant",
    )
    args = parser.parse_args(argv)

    store = random_store(60, 4000, n_relations=2, data_values=range(6), seed=3)
    if args.executor == "process" and procpool.get_pool(2) is None:
        print("SKIP: cannot spawn worker processes here")
        return 0

    shm_before = _dev_shm_entries()
    threads_before = threading.active_count()

    engine = ShardedEngine(
        shards=4, executor=args.executor,
        **({"workers": 2, "dispatch_min": 0} if args.executor == "process" else {}),
    )
    tenants = {
        "default": Database(store),
        "sharded": Database(store, engine),
    }
    expected_scan = Database(store).query("E0").total
    join = "join[1,3',3; 2=1'](E0, E1)"
    expected_join = Database(store).query(join).total

    config = ServiceConfig(port=0, max_inflight=8, query_timeout=60.0)
    server = QueryServer(tenants, config).start()
    print(f"serving on {server.url} (sharded executor: {args.executor})")
    failures = []

    def check(label, ok):
        print(f"  {'ok ' if ok else 'FAIL'} {label}")
        if not ok:
            failures.append(label)

    with ServiceClient(server.url) as client:
        check("healthz", client.health()["status"] == "ok")
        check(
            "http scan (set tenant)",
            client.query("E0")["total"] == expected_scan,
        )
        check(
            "http join (sharded tenant)",
            client.query(join, tenant="sharded")["total"] == expected_join,
        )
        sid = client.prepare("select[1=$s](E0)", tenant="sharded")["statement"]
        bound = client.execute(sid, params={"s": "o3"}, tenant="sharded")
        check("prepared execute", bound["total"] == bound["returned"])
        rows = 0
        pages = 0
        for message in client.stream(join, tenant="sharded", page_size=256):
            if message.get("done"):
                check(
                    "ws stream totals",
                    rows == message["total"] == expected_join
                    and pages == message["pages"],
                )
                break
            rows += len(message["rows"])
            pages += 1
        try:
            client.query("NOPE")
            check("structured remote error", False)
        except RemoteError as exc:
            check(
                "structured remote error",
                exc.remote_type == "UnknownRelationError" and exc.status == 404,
            )
        series = parse_exposition(client.metrics())
        ok_queries = sum(
            v
            for k, v in series.items()
            if k.startswith("repro_queries_total{") and 'status="ok"' in k
        )
        check("metrics scrape counts queries", ok_queries >= 4)
        check(
            "metrics name both tenants",
            any('tenant="sharded"' in k for k in series)
            and any('tenant="default"' in k for k in series),
        )

    server.stop()
    check("clean shutdown (idempotent)", server._httpd is None)
    server.stop()  # second stop is a no-op

    leaked = _dev_shm_entries() - shm_before
    check(f"/dev/shm clean ({args.executor})", not leaked)
    # Handler threads are daemonic and torn down with the listener; the
    # worker pool is a process-wide singleton, so thread count may keep
    # the pool's plumbing — but no unbounded growth.
    check(
        "no thread pile-up",
        threading.active_count() <= threads_before + 4,
    )

    if failures:
        print(f"FAIL: {len(failures)} smoke check(s) failed: {failures}")
        return 1
    print("OK: service smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
