#!/usr/bin/env python
"""Standalone entry point for the repo-invariant linter.

Equivalent to ``repro lint`` (or ``python -m repro.analysis.lint``) with
``--root`` defaulting to the repository this script lives in, so CI and
pre-commit hooks can run it without installing the package::

    python scripts/lint.py
    python scripts/lint.py --select ERR-MAP,ERR-ORDER
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.analysis.lint import main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:]
    if not any(a == "--root" or a.startswith("--root=") for a in argv):
        argv = ["--root", _ROOT] + argv
    raise SystemExit(main(argv))
