"""Regenerate the shipped fixture files under ``data/``.

The integration tests assert that the shipped files match the in-code
datasets exactly (``data/figure1.tstore`` against
:func:`repro.rdf.figure1`, ``data/query_q.dl`` against the Proposition 2
translation of :func:`repro.core.query_q`), so whenever either changes,
re-run::

    PYTHONPATH=src python scripts/regenerate_data.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import evaluate, query_q
from repro.datalog import parse_program, run_program, trial_to_datalog
from repro.rdf import figure1
from repro.triplestore import dumps, loads

DATA = Path(__file__).resolve().parent.parent / "data"

FIGURE1_HEADER = """\
# The transport network of Figure 1 (Libkin, Reutter, Vrgoč — PODS 2013),
# serialised from repro.rdf.datasets.figure1().
# Regenerate with: PYTHONPATH=src python scripts/regenerate_data.py
"""

QUERY_Q_HEADER = """\
# Query Q (Section 2.2 / Example 4) as a TripleDatalog program:
# pairs of cities connected by services operated by a single company.
# Produced by trial_to_datalog(query_q()); the answer predicate is Ans.
# Regenerate with: PYTHONPATH=src python scripts/regenerate_data.py
"""


def main() -> int:
    DATA.mkdir(exist_ok=True)

    store = figure1()
    (DATA / "figure1.tstore").write_text(
        FIGURE1_HEADER + dumps(store), encoding="utf-8"
    )

    program = trial_to_datalog(query_q())
    (DATA / "query_q.dl").write_text(
        QUERY_Q_HEADER + repr(program) + "\n", encoding="utf-8"
    )

    # Verify the round trips the integration tests rely on.
    reloaded = loads((DATA / "figure1.tstore").read_text(encoding="utf-8"))
    assert reloaded == store, "figure1.tstore does not round-trip"
    reparsed = parse_program((DATA / "query_q.dl").read_text(encoding="utf-8"))
    assert run_program(reparsed, store) == evaluate(query_q(), store), (
        "query_q.dl disagrees with query_q() on figure1"
    )
    print(f"wrote {DATA / 'figure1.tstore'} ({store.size} triples)")
    print(f"wrote {DATA / 'query_q.dl'} ({len(reparsed)} rules)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
