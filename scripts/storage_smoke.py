"""Kill-and-reopen smoke test for the durable store (the CI durability job).

Builds a durable store, then for every WAL fault point hard-kills a
child process mid-commit (``REPRO_STORAGE_FAULT`` → ``os._exit(137)``)
and reopens the store, asserting the surviving state is *exactly* the
pre-batch or post-batch state — never a half-applied mixture — and that
``repro fsck`` agrees the store is healthy.  Finishes with a clean
compact + warm-reopen cycle and verifies nothing leaked (no ``*.tmp``
files, no stale ``segments/gen-*`` directories, no ``/dev/shm``
segments).

Usage::

    PYTHONPATH=src python scripts/storage_smoke.py
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.db import Database  # noqa: E402
from repro.storage import fsck_store  # noqa: E402
from repro.storage.wal import FAULT_ENV, FAULT_POINTS  # noqa: E402

PRE_E = frozenset({("a", "p", "b")})
POST_E = frozenset({("a", "p", "b"), ("x", "q", "y")})
POST_R = frozenset({("r", "s", "t")})

_SETUP = """
import sys
from repro.db import Database
db = Database(path=sys.argv[1])
db.install("E", [("a", "p", "b")])
db.close()
"""

_MUTATE = """
import sys
from repro.db import Database
db = Database(path=sys.argv[1])
with db.batch():
    db.install("E", [("a", "p", "b"), ("x", "q", "y")])
    db.install("R", [("r", "s", "t")])
db.close()
"""


def _dev_shm_entries() -> set:
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {n for n in names if n.startswith("repro-")}


def _run(script: str, store: str, fault: str | None = None) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    env.pop(FAULT_ENV, None)
    if fault is not None:
        env[FAULT_ENV] = fault
    proc = subprocess.run(
        [sys.executable, "-c", script, store],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    if proc.returncode not in (0, 137):
        print(proc.stderr, file=sys.stderr)
    return proc.returncode


def _classify(store: str) -> str:
    db = Database(path=store)
    try:
        names = set(db.store.relation_names)
        e = db.store.relation("E")
        r = db.store.relation("R") if "R" in names else None
    finally:
        db.close()
    if e == PRE_E and r is None:
        return "PRE"
    if e == POST_E and r == POST_R:
        return "POST"
    return f"HALF(E={sorted(e)!r}, R={r!r})"


def main() -> int:
    shm_before = _dev_shm_entries()
    failures = 0

    for fault in sorted(FAULT_POINTS):
        with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
            store = os.path.join(tmp, "store")
            if _run(_SETUP, store) != 0:
                print(f"FAIL {fault}: setup did not complete")
                failures += 1
                continue
            rc = _run(_MUTATE, store, fault=fault)
            if rc != 137:
                print(f"FAIL {fault}: child survived the fault (rc={rc})")
                failures += 1
                continue
            state = _classify(store)
            findings = fsck_store(store)
            if state.startswith("HALF") or findings:
                print(f"FAIL {fault}: state={state} findings={findings}")
                failures += 1
            else:
                print(f"ok   {fault}: {state}, fsck clean")

    # A clean lifecycle: install → compact → warm reopen, nothing leaked.
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        store = os.path.join(tmp, "store")
        db = Database(path=store)
        db.install("E", [("a", "p", "b"), ("b", "p", "c")])
        db.query("join[1,2,3'; 3=1'](E, E)")
        db.close()
        db2 = Database(path=store)
        db2.query("join[1,2,3'; 3=1'](E, E)")
        hits = db2.cache_info()["plans"].hits
        db2.close()
        leaked_tmp = glob.glob(os.path.join(store, "**", "*.tmp"), recursive=True)
        gens = glob.glob(os.path.join(store, "segments", "gen-*"))
        if hits < 1:
            print(f"FAIL warm-reopen: expected a plan-cache hit, saw {hits}")
            failures += 1
        elif leaked_tmp or len(gens) != 1:
            print(f"FAIL lifecycle: leaked tmp={leaked_tmp} generations={gens}")
            failures += 1
        else:
            print("ok   lifecycle: warm reopen hit the plan cache, no leaks")

    leaked_shm = _dev_shm_entries() - shm_before
    if leaked_shm:
        print(f"FAIL shm: leaked segments {sorted(leaked_shm)}")
        failures += 1

    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
        return 1
    print("storage smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
