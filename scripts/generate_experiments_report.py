"""Regenerate the measured numbers quoted in EXPERIMENTS.md.

Run:  PYTHONPATH=src python scripts/generate_experiments_report.py

Prints the scaling tables and log–log slopes for the complexity
experiments (E7–E10) plus the verified outcomes of the exactness and
separation experiments.  Wall-clock numbers vary by machine; the
*slopes* and *orderings* are the reproduction targets.
"""

import sys

sys.path.insert(0, "src")

from repro.bench import fit_loglog_slope, format_table, sweep
from repro.core import (
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    R,
    evaluate,
    join,
    query_q,
    star,
)
from repro.datalog import run_program, trial_to_datalog
from repro.workloads import chain_store, random_store, transport_network


def series(points):
    return ", ".join(f"{m.size}:{m.seconds * 1e3:.1f}ms" for m in points)


def main() -> None:
    rows = []

    # E7 — Theorem 3: naive nested-loop join, quadratic in |T|.
    j = join(R("E"), R("E"), "1,2,3'", "3=1'")
    pts = sweep(
        lambda n: random_store(n // 12, n, seed=n),
        lambda s: NaiveEngine().evaluate(j, s),
        sizes=(100, 200, 400, 800),
        repeats=2,
    )
    rows.append(("E7 naive join (Thm 3)", "2.0", f"{fit_loglog_slope(pts):.2f}", series(pts)))

    # E7 — naive star on a chain (|T| = n; output Θ(n²), re-join each round).
    s = star(R("E"), "1,2,3'", "3=1'")
    pts = sweep(
        chain_store,
        lambda st: NaiveEngine().evaluate(s, st),
        sizes=(16, 32, 64),
        repeats=1,
    )
    rows.append(("E7 naive star (Thm 3)", "<= 4 in n", f"{fit_loglog_slope(pts):.2f}", series(pts)))

    # E8 — Prop 4: hash join on the same workload as the naive join.
    pts = sweep(
        lambda n: random_store(n // 12, n, seed=n),
        lambda st: HashJoinEngine().evaluate(j, st),
        sizes=(100, 200, 400, 800),
        repeats=2,
    )
    rows.append(("E8 equality join (Prop 4)", "~1", f"{fit_loglog_slope(pts):.2f}", series(pts)))

    # E9 — Prop 5: BFS reach star vs the generic fixpoint on chains.
    for name, engine, expected in (
        ("E9 reach star, BFS (Prop 5)", FastEngine(), "~2 (output Θ(n²))"),
        ("E9 reach star, generic fixpoint", HashJoinEngine(), "~2, larger const"),
        ("E9 reach star, naive (Thm 3)", NaiveEngine(), "~4"),
    ):
        sizes = (40, 80) if isinstance(engine, NaiveEngine) else (60, 120, 240)
        pts = sweep(
            chain_store, lambda st, e=engine: e.evaluate(s, st), sizes=sizes, repeats=1
        )
        rows.append((name, expected, f"{fit_loglog_slope(pts):.2f}", series(pts)))

    # E10 — Corollary 1: Datalog tracks the algebra.
    prog = trial_to_datalog(query_q())

    def mk(n):
        return transport_network(
            n_cities=n, n_services=max(2, n // 5), n_companies=3,
            extra_routes=n // 2, seed=n,
        )

    pts_alg = sweep(mk, lambda st: HashJoinEngine().evaluate(query_q(), st), sizes=(20, 40, 80, 160), repeats=1)
    pts_dl = sweep(mk, lambda st: run_program(prog, st), sizes=(20, 40, 80, 160), repeats=1)
    rows.append(("E10 query Q, algebra", "-", f"{fit_loglog_slope(pts_alg):.2f}", series(pts_alg)))
    rows.append(("E10 query Q, datalog (Cor 1)", "same slope", f"{fit_loglog_slope(pts_dl):.2f}", series(pts_dl)))

    print(format_table(rows, headers=("experiment", "expected slope", "measured", "series")))

    # The exactness experiments (pass/fail).
    from repro.rdf import (
        RDFGraph,
        proposition1_d1,
        proposition1_d2,
        sigma,
    )
    from repro.core import project13

    d1, d2 = proposition1_d1(), proposition1_d2()
    print()
    print("E2  sigma(D1) == sigma(D2):",
          sigma(RDFGraph(d1.relation("E"))) == sigma(RDFGraph(d2.relation("E"))))
    q1 = project13(evaluate(query_q(), d1))
    q2 = project13(evaluate(query_q(), d2))
    print("E2  Q distinguishes D1/D2:", (("St. Andrews", "London") in q1)
          and (("St. Andrews", "London") not in q2))

    from repro.logic.games import fo_k_equivalent
    from repro.rdf.datasets import clique_store

    print("E11 T3 =FO3= T4 (pebble game):", fo_k_equivalent(clique_store(3), clique_store(4), 3))


if __name__ == "__main__":
    main()
